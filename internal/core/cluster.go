// Cluster: the multi-vault "cluster in a process".
//
// A Cluster hash-partitions record IDs across N independent Vault shards.
// Each shard is a complete trust boundary — its own WAL, blockstore,
// keystore, Merkle commitment log, audit chain, read caches, and lock
// stripes — so the split never separates security state from the data it
// protects, and a compromised (or wedged) shard's blast radius stays inside
// the shard. The shards share one clock, one authorizer, and one retention
// manager: authorization decisions are shard-local and fully audited on the
// shard that executes the operation, but the policy state they evaluate is
// process-wide, exactly as it was with a single vault.
//
// Routing: single-record operations go to ShardOf(id) and behave exactly as
// on a single vault. Whole-cluster operations (VerifyAll, Search, Close,
// Health, retention sweeps, disclosure accounting) fan out to every shard
// and merge deterministically — per-shard results are always combined in
// shard-index order, and order-bearing merges (audit events, disclosures)
// are then stably sorted by timestamp, so ties keep shard order.
//
// With one shard the Cluster is a pass-through: no manifest is written, the
// directory layout is the classic single-vault layout, and every operation
// delegates without wrapping, so behavior (including error text, audit
// journal, and on-disk fs op sequence) is identical to a bare Vault.
package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"medvault/internal/audit"
	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/ehr"
	"medvault/internal/faultfs"
	"medvault/internal/merkle"
	"medvault/internal/obs"
	"medvault/internal/provenance"
	"medvault/internal/retention"
	"medvault/internal/vcrypto"
)

// MaxShards bounds a cluster. The cap is arbitrary but keeps a typo'd
// -shards from fanning out ten thousand WALs.
const MaxShards = 256

// clusterManifest is the file recording a durable cluster's shard count.
// The shard count is part of the data layout — reopening with a different
// count would silently route records to shards that never stored them — so
// it is pinned at creation and checked on every open.
const clusterManifest = "cluster.conf"

// ShardOf maps a record ID onto one of n shards. The mapping is part of the
// durable format: records are stored on the shard this function names, so
// changing the hash is a format break (see the golden test in
// cluster_test.go). FNV-1a/64 is used for the same reason the lock stripes
// use FNV-1a/32 — tiny, allocation-free, and well distributed on short IDs.
func ShardOf(id string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return int(h.Sum64() % uint64(n))
}

// API is the vault operation surface, satisfied by both a single *Vault and
// a *Cluster. Everything above core — httpapi, backup, migrate, the bench
// adapter, the simulator — programs against this seam, so "one vault" is a
// deployment choice, not an architectural assumption.
type API interface {
	// Identity and lifecycle.
	Name() string
	PublicKey() vcrypto.PublicKey
	Sign(purpose string, data []byte) []byte
	Health() HealthStatus
	Close() error
	Len() int
	StorageBytes() int64
	Heads() []merkle.SignedTreeHead
	Authz() *authz.Authorizer
	Retention() *retention.Manager

	// Record operations (routed to one shard).
	Put(actor string, rec ehr.Record) (Version, error)
	PutCtx(ctx context.Context, actor string, rec ehr.Record) (Version, error)
	Get(actor, id string) (ehr.Record, Version, error)
	GetCtx(ctx context.Context, actor, id string) (ehr.Record, Version, error)
	GetVersion(actor, id string, number uint64) (ehr.Record, Version, error)
	GetVersionCtx(ctx context.Context, actor, id string, number uint64) (ehr.Record, Version, error)
	History(actor, id string) ([]Version, error)
	HistoryCtx(ctx context.Context, actor, id string) ([]Version, error)
	Correct(actor string, rec ehr.Record) (Version, error)
	CorrectCtx(ctx context.Context, actor string, rec ehr.Record) (Version, error)
	Shred(actor, id string) error
	ShredCtx(ctx context.Context, actor, id string) error
	PlaceHold(actor, id, reason string) error
	PlaceHoldCtx(ctx context.Context, actor, id, reason string) error
	ReleaseHold(actor, id string) error
	ReleaseHoldCtx(ctx context.Context, actor, id string) error
	Provenance(actor, id string) ([]provenance.Event, error)
	ProvenanceCtx(ctx context.Context, actor, id string) ([]provenance.Event, error)
	ProveVersion(actor, id string, number uint64) (VersionProof, error)
	ProveVersionCtx(ctx context.Context, actor, id string, number uint64) (VersionProof, error)
	VersionCount(id string) (int, error)
	Export(actor, id string) (ExportBundle, error)
	Import(actor string, bundle ExportBundle, sourceSystem string) error
	ImportRestored(actor string, bundle ExportBundle, sourceSystem string) error
	RecordBackedUp(actor, id, destination string) error
	RecordMigratedOut(actor, id, targetSystem string) error

	// Whole-cluster operations (fanned out and merged).
	Search(actor, keyword string) ([]string, error)
	SearchCtx(ctx context.Context, actor, keyword string) ([]string, error)
	SearchAll(actor string, keywords ...string) ([]string, error)
	SearchAllCtx(ctx context.Context, actor string, keywords ...string) ([]string, error)
	BreakGlass(actor, reason string, duration time.Duration) error
	BreakGlassCtx(ctx context.Context, actor, reason string, duration time.Duration) error
	AuditEvents(actor string, q audit.Query) ([]audit.Event, error)
	AuditEventsCtx(ctx context.Context, actor string, q audit.Query) ([]audit.Event, error)
	AccountingOfDisclosures(actor, mrn string) ([]Disclosure, error)
	AccountingOfDisclosuresCtx(ctx context.Context, actor, mrn string) ([]Disclosure, error)
	PatientRecords(actor, mrn string) ([]string, error)
	PatientRecordsCtx(ctx context.Context, actor, mrn string) ([]string, error)
	VerifyAll(rememberedHeads []merkle.SignedTreeHead, rememberedCheckpoints []audit.Checkpoint) (Report, error)
	SanitizeMedia(actor string) (int, int64, error)
	RecordIDs() []string
	ExpiredRecords() []string
}

var (
	_ API = (*Vault)(nil)
	_ API = (*Cluster)(nil)
)

// Cluster hash-partitions records across independent vault shards behind
// the Vault API. See the package comment above for routing and merge rules.
type Cluster struct {
	shards []*Vault
	auth   *authz.Authorizer
	ret    *retention.Manager
	name   string
}

// OpenCluster creates or reopens a cluster of shards vaults over cfg.
//
// Layout: with one shard, cfg.Dir is used directly (the classic single-vault
// layout — a one-shard cluster is bit-compatible with a bare Vault). With
// more, each shard lives under cfg.Dir/shard-<i> and cfg.Dir/cluster.conf
// pins the shard count; reopening with a different count is an error, and
// shards == 0 adopts the manifest's count (1 when there is none).
//
// All shards share the master key, system name, clock, authorizer, and
// retention manager, so the cluster presents one signing identity and one
// policy surface while every shard keeps its own full storage stack.
func OpenCluster(cfg Config, shards int) (*Cluster, error) {
	if shards < 0 {
		return nil, fmt.Errorf("core: shard count %d is negative", shards)
	}
	if shards > MaxShards {
		return nil, fmt.Errorf("core: shard count %d exceeds the maximum of %d", shards, MaxShards)
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if cfg.Dir != "" {
		n, err := reconcileManifest(fsys, cfg.Dir, shards)
		if err != nil {
			return nil, err
		}
		shards = n
	} else if shards == 0 {
		shards = 1
	}

	if cfg.Name == "" {
		cfg.Name = "medvault"
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	cfg.Clock = clk
	now := func() time.Time { return clk.Now() }

	c := &Cluster{name: cfg.Name}
	// One authorizer and one retention manager for the whole cluster:
	// grants, roles, holds, and schedules are policy, not data, and must
	// not diverge between shards. Vault.Open applies cfg.Policies (or the
	// standard set) to the shared manager; SetPolicy is idempotent, so
	// every shard applying the same set is harmless.
	c.auth = authz.New(now)
	c.ret = retention.NewManager(clk)

	for i := 0; i < shards; i++ {
		scfg := cfg
		scfg.sharedAuth = c.auth
		scfg.sharedRet = c.ret
		if shards > 1 {
			scfg.shardTag = strconv.Itoa(i)
			if cfg.Dir != "" {
				scfg.Dir = filepath.Join(cfg.Dir, "shard-"+strconv.Itoa(i))
			}
		}
		v, err := Open(scfg)
		if err != nil {
			for _, prev := range c.shards {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("core: opening shard %d of %d: %w", i, shards, err)
		}
		c.shards = append(c.shards, v)
	}
	return c, nil
}

// reconcileManifest reads, checks, or creates the shard-count manifest and
// returns the effective shard count. requested == 0 adopts the existing
// layout (manifest count, or 1 when the directory has no manifest).
func reconcileManifest(fsys faultfs.FS, dir string, requested int) (int, error) {
	path := filepath.Join(dir, clusterManifest)
	data, err := fsys.ReadFile(path)
	switch {
	case err == nil:
		n, perr := parseManifest(data)
		if perr != nil {
			return 0, fmt.Errorf("core: %s: %w", path, perr)
		}
		if requested != 0 && requested != n {
			return 0, fmt.Errorf("core: %s pins %d shards but %d were requested; the shard count is part of the data layout and cannot change on reopen", path, n, requested)
		}
		return n, nil
	case errors.Is(err, fs.ErrNotExist):
		if requested == 0 {
			requested = 1
		}
		if requested == 1 {
			// Single-shard layouts stay manifest-free: a one-shard cluster
			// must be bit-compatible with a pre-cluster vault directory,
			// in both directions.
			return 1, nil
		}
		// Refuse to shard over an existing single-vault directory: the old
		// records would sit invisible next to empty shards.
		if _, serr := fsys.Stat(filepath.Join(dir, "meta.wal")); serr == nil {
			return 0, fmt.Errorf("core: %s holds a single-vault layout; it cannot be reopened with %d shards", dir, requested)
		}
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return 0, fmt.Errorf("core: creating cluster directory: %w", err)
		}
		// The manifest is committed by write-tmp, sync, rename — the same
		// idiom the metadata snapshot uses: a power cut (or ENOSPC) at any
		// point during creation must leave either no manifest at all (the
		// next open recreates it) or the complete synced one, never a
		// present-but-empty file that poisons every later open.
		tmp := path + ".tmp"
		f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return 0, fmt.Errorf("core: writing %s: %w", path, err)
		}
		_, err = f.Write([]byte(fmt.Sprintf("shards %d\n", requested)))
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			fsys.Remove(tmp)
			return 0, fmt.Errorf("core: writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			fsys.Remove(tmp)
			return 0, fmt.Errorf("core: writing %s: %w", path, err)
		}
		if err := fsys.Rename(tmp, path); err != nil {
			fsys.Remove(tmp)
			return 0, fmt.Errorf("core: committing %s: %w", path, err)
		}
		return requested, nil
	default:
		return 0, fmt.Errorf("core: reading %s: %w", path, err)
	}
}

// parseManifest decodes a "shards N" manifest.
func parseManifest(data []byte) (int, error) {
	fields := strings.Fields(string(data))
	if len(fields) != 2 || fields[0] != "shards" {
		return 0, fmt.Errorf("malformed cluster manifest (want \"shards N\")")
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 1 || n > MaxShards {
		return 0, fmt.Errorf("malformed cluster manifest shard count %q", fields[1])
	}
	return n, nil
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns shard i — the per-shard handle the simulator and tests use
// to address one shard's audit chain, tree head, and checkpoints directly.
func (c *Cluster) Shard(i int) *Vault { return c.shards[i] }

// shardFor routes a record ID.
func (c *Cluster) shardFor(id string) *Vault {
	return c.shards[ShardOf(id, len(c.shards))]
}

// single reports whether this is a pass-through one-shard cluster.
func (c *Cluster) single() bool { return len(c.shards) == 1 }

// fanOut runs fn on every shard concurrently and merges the per-shard
// errors deterministically: failures are reported in shard-index order,
// each tagged with its shard, and a healthy shard's success is never masked
// by a wedged sibling — every shard runs to completion.
func (c *Cluster) fanOut(fn func(i int, v *Vault) error) error {
	if c.single() {
		return fn(0, c.shards[0])
	}
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, v := range c.shards {
		wg.Add(1)
		go func(i int, v *Vault) {
			defer wg.Done()
			errs[i] = fn(i, v)
		}(i, v)
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(failed...)
}

// --- identity and lifecycle ---

// Name returns the cluster's system name (shared by every shard).
func (c *Cluster) Name() string { return c.name }

// PublicKey returns the signing identity. Every shard derives its signer
// from the same master, so the cluster speaks with one key.
func (c *Cluster) PublicKey() vcrypto.PublicKey { return c.shards[0].PublicKey() }

// Sign signs data under the cluster identity.
func (c *Cluster) Sign(purpose string, data []byte) []byte { return c.shards[0].Sign(purpose, data) }

// Authz returns the shared authorizer.
func (c *Cluster) Authz() *authz.Authorizer { return c.auth }

// Retention returns the shared retention manager.
func (c *Cluster) Retention() *retention.Manager { return c.ret }

// Len sums live records across shards.
func (c *Cluster) Len() int {
	n := 0
	for _, v := range c.shards {
		n += v.Len()
	}
	return n
}

// StorageBytes sums storage across shards.
func (c *Cluster) StorageBytes() int64 {
	var n int64
	for _, v := range c.shards {
		n += v.StorageBytes()
	}
	return n
}

// Heads returns every shard's signed tree head, in shard order. Remember
// them off-system and hand each back to its shard's VerifyAll.
func (c *Cluster) Heads() []merkle.SignedTreeHead {
	out := make([]merkle.SignedTreeHead, len(c.shards))
	for i, v := range c.shards {
		out[i] = v.Head()
	}
	return out
}

// Health merges per-shard health: the cluster is Open/Durable only if every
// shard is, wedged if any shard is, and the counts are sums. InFlightOps is
// the process-wide gauge, not a sum — shards share it.
func (c *Cluster) Health() HealthStatus {
	if c.single() {
		return c.shards[0].Health()
	}
	var merged HealthStatus
	merged.Open = true
	merged.Durable = true
	for i, v := range c.shards {
		h := v.Health()
		merged.Open = merged.Open && h.Open
		merged.Durable = merged.Durable && h.Durable
		if h.WALWedged && !merged.WALWedged {
			merged.WALWedged = true
			merged.WALWedgeError = fmt.Sprintf("shard %d: %s", i, h.WALWedgeError)
		}
		merged.WALQueueDepth += h.WALQueueDepth
		merged.LiveRecords += h.LiveRecords
		merged.LastRecovery.Ran = merged.LastRecovery.Ran || h.LastRecovery.Ran
		merged.LastRecovery.SnapshotLoaded = merged.LastRecovery.SnapshotLoaded || h.LastRecovery.SnapshotLoaded
		merged.LastRecovery.WALEntries += h.LastRecovery.WALEntries
		merged.LastRecovery.RecordsLive += h.LastRecovery.RecordsLive
	}
	merged.InFlightOps = c.shards[0].Health().InFlightOps
	return merged
}

// ShardHealths returns each shard's own health report, in shard order —
// the per-shard detail behind the merged Health.
func (c *Cluster) ShardHealths() []HealthStatus {
	out := make([]HealthStatus, len(c.shards))
	for i, v := range c.shards {
		out[i] = v.Health()
	}
	return out
}

// Close closes every shard concurrently and reports failures in shard
// order. A failing shard never prevents its siblings from closing.
func (c *Cluster) Close() error {
	return c.fanOut(func(_ int, v *Vault) error { return v.Close() })
}

// --- routed single-record operations ---

// Put routes to the record's shard. See Vault.Put.
func (c *Cluster) Put(actor string, rec ehr.Record) (Version, error) {
	return c.shardFor(rec.ID).Put(actor, rec)
}

// PutCtx routes to the record's shard. See Vault.PutCtx.
func (c *Cluster) PutCtx(ctx context.Context, actor string, rec ehr.Record) (Version, error) {
	return c.shardFor(rec.ID).PutCtx(ctx, actor, rec)
}

// Get routes to the record's shard. See Vault.Get.
func (c *Cluster) Get(actor, id string) (ehr.Record, Version, error) {
	return c.shardFor(id).Get(actor, id)
}

// GetCtx routes to the record's shard. See Vault.GetCtx.
func (c *Cluster) GetCtx(ctx context.Context, actor, id string) (ehr.Record, Version, error) {
	return c.shardFor(id).GetCtx(ctx, actor, id)
}

// GetVersion routes to the record's shard. See Vault.GetVersion.
func (c *Cluster) GetVersion(actor, id string, number uint64) (ehr.Record, Version, error) {
	return c.shardFor(id).GetVersion(actor, id, number)
}

// GetVersionCtx routes to the record's shard. See Vault.GetVersionCtx.
func (c *Cluster) GetVersionCtx(ctx context.Context, actor, id string, number uint64) (ehr.Record, Version, error) {
	return c.shardFor(id).GetVersionCtx(ctx, actor, id, number)
}

// History routes to the record's shard. See Vault.History.
func (c *Cluster) History(actor, id string) ([]Version, error) {
	return c.shardFor(id).History(actor, id)
}

// HistoryCtx routes to the record's shard. See Vault.HistoryCtx.
func (c *Cluster) HistoryCtx(ctx context.Context, actor, id string) ([]Version, error) {
	return c.shardFor(id).HistoryCtx(ctx, actor, id)
}

// Correct routes to the record's shard. See Vault.Correct.
func (c *Cluster) Correct(actor string, rec ehr.Record) (Version, error) {
	return c.shardFor(rec.ID).Correct(actor, rec)
}

// CorrectCtx routes to the record's shard. See Vault.CorrectCtx.
func (c *Cluster) CorrectCtx(ctx context.Context, actor string, rec ehr.Record) (Version, error) {
	return c.shardFor(rec.ID).CorrectCtx(ctx, actor, rec)
}

// Shred routes to the record's shard. See Vault.Shred.
func (c *Cluster) Shred(actor, id string) error { return c.shardFor(id).Shred(actor, id) }

// ShredCtx routes to the record's shard. See Vault.ShredCtx.
func (c *Cluster) ShredCtx(ctx context.Context, actor, id string) error {
	return c.shardFor(id).ShredCtx(ctx, actor, id)
}

// PlaceHold routes to the record's shard. See Vault.PlaceHold.
func (c *Cluster) PlaceHold(actor, id, reason string) error {
	return c.shardFor(id).PlaceHold(actor, id, reason)
}

// PlaceHoldCtx routes to the record's shard. See Vault.PlaceHoldCtx.
func (c *Cluster) PlaceHoldCtx(ctx context.Context, actor, id, reason string) error {
	return c.shardFor(id).PlaceHoldCtx(ctx, actor, id, reason)
}

// ReleaseHold routes to the record's shard. See Vault.ReleaseHold.
func (c *Cluster) ReleaseHold(actor, id string) error {
	return c.shardFor(id).ReleaseHold(actor, id)
}

// ReleaseHoldCtx routes to the record's shard. See Vault.ReleaseHoldCtx.
func (c *Cluster) ReleaseHoldCtx(ctx context.Context, actor, id string) error {
	return c.shardFor(id).ReleaseHoldCtx(ctx, actor, id)
}

// Provenance routes to the record's shard. See Vault.Provenance.
func (c *Cluster) Provenance(actor, id string) ([]provenance.Event, error) {
	return c.shardFor(id).Provenance(actor, id)
}

// ProvenanceCtx routes to the record's shard. See Vault.ProvenanceCtx.
func (c *Cluster) ProvenanceCtx(ctx context.Context, actor, id string) ([]provenance.Event, error) {
	return c.shardFor(id).ProvenanceCtx(ctx, actor, id)
}

// ProveVersion routes to the record's shard. See Vault.ProveVersion.
func (c *Cluster) ProveVersion(actor, id string, number uint64) (VersionProof, error) {
	return c.shardFor(id).ProveVersion(actor, id, number)
}

// ProveVersionCtx routes to the record's shard; the proof anchors to that
// shard's tree head.
func (c *Cluster) ProveVersionCtx(ctx context.Context, actor, id string, number uint64) (VersionProof, error) {
	return c.shardFor(id).ProveVersionCtx(ctx, actor, id, number)
}

// VersionCount routes to the record's shard. See Vault.VersionCount.
func (c *Cluster) VersionCount(id string) (int, error) { return c.shardFor(id).VersionCount(id) }

// Export routes to the record's shard. See Vault.Export.
func (c *Cluster) Export(actor, id string) (ExportBundle, error) {
	return c.shardFor(id).Export(actor, id)
}

// Import routes the bundle to its record's shard. See Vault.Import.
func (c *Cluster) Import(actor string, bundle ExportBundle, sourceSystem string) error {
	return c.shardFor(bundle.ID).Import(actor, bundle, sourceSystem)
}

// ImportRestored routes the bundle to its record's shard.
func (c *Cluster) ImportRestored(actor string, bundle ExportBundle, sourceSystem string) error {
	return c.shardFor(bundle.ID).ImportRestored(actor, bundle, sourceSystem)
}

// RecordBackedUp routes to the record's shard.
func (c *Cluster) RecordBackedUp(actor, id, destination string) error {
	return c.shardFor(id).RecordBackedUp(actor, id, destination)
}

// RecordMigratedOut routes to the record's shard.
func (c *Cluster) RecordMigratedOut(actor, id, targetSystem string) error {
	return c.shardFor(id).RecordMigratedOut(actor, id, targetSystem)
}

// --- fanned-out whole-cluster operations ---

// Search fans out to every shard and merges the sorted union. Each shard
// audits the search decision on its own chain — the shard that holds a hit
// must also hold the audit trail of the query that found it.
func (c *Cluster) Search(actor, keyword string) ([]string, error) {
	return c.SearchCtx(context.Background(), actor, keyword)
}

// SearchCtx is Search under a caller-supplied context.
func (c *Cluster) SearchCtx(ctx context.Context, actor, keyword string) ([]string, error) {
	if c.single() {
		return c.shards[0].SearchCtx(ctx, actor, keyword)
	}
	return c.mergeSearch(func(v *Vault) ([]string, error) {
		return v.SearchCtx(ctx, actor, keyword)
	})
}

// SearchAll fans out conjunctive search; see Search for audit semantics.
func (c *Cluster) SearchAll(actor string, keywords ...string) ([]string, error) {
	return c.SearchAllCtx(context.Background(), actor, keywords...)
}

// SearchAllCtx is SearchAll under a caller-supplied context.
func (c *Cluster) SearchAllCtx(ctx context.Context, actor string, keywords ...string) ([]string, error) {
	if c.single() {
		return c.shards[0].SearchAllCtx(ctx, actor, keywords...)
	}
	return c.mergeSearch(func(v *Vault) ([]string, error) {
		return v.SearchAllCtx(ctx, actor, keywords...)
	})
}

// mergeSearch runs one search per shard and merges hits into one sorted
// list. Shards hold disjoint records, so the merge is a plain union. On a
// shared-authorizer denial every shard still audits its own denial before
// the error is returned.
func (c *Cluster) mergeSearch(search func(*Vault) ([]string, error)) ([]string, error) {
	res := make([][]string, len(c.shards))
	err := c.fanOut(func(i int, v *Vault) error {
		ids, err := search(v)
		res[i] = ids
		return err
	})
	if err != nil {
		return nil, err
	}
	var merged []string
	for _, ids := range res {
		merged = append(merged, ids...)
	}
	sort.Strings(merged)
	return merged, nil
}

// PatientRecords fans out and merges the sorted union (never audited,
// never errors — see Vault.PatientRecords).
func (c *Cluster) PatientRecords(actor, mrn string) ([]string, error) {
	return c.PatientRecordsCtx(context.Background(), actor, mrn)
}

// PatientRecordsCtx is PatientRecords under a caller-supplied context.
func (c *Cluster) PatientRecordsCtx(ctx context.Context, actor, mrn string) ([]string, error) {
	if c.single() {
		return c.shards[0].PatientRecordsCtx(ctx, actor, mrn)
	}
	return c.mergeSearch(func(v *Vault) ([]string, error) {
		return v.PatientRecordsCtx(ctx, actor, mrn)
	})
}

// BreakGlass issues the emergency grant and audits it on every shard, in
// shard order: the grant elevates access cluster-wide (the authorizer is
// shared), so every shard's chain must show it. Re-issuing on each shard is
// an idempotent overwrite of the same grant.
func (c *Cluster) BreakGlass(actor, reason string, duration time.Duration) error {
	return c.BreakGlassCtx(context.Background(), actor, reason, duration)
}

// BreakGlassCtx is BreakGlass under a caller-supplied context.
func (c *Cluster) BreakGlassCtx(ctx context.Context, actor, reason string, duration time.Duration) error {
	if c.single() {
		return c.shards[0].BreakGlassCtx(ctx, actor, reason, duration)
	}
	var firstErr error
	for _, v := range c.shards {
		if err := v.BreakGlassCtx(ctx, actor, reason, duration); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AuditEvents queries every shard — each shard audits the query decision on
// its own chain — and merges matching events chronologically: shard results
// are concatenated in shard order and stably sorted by timestamp, so
// same-instant events keep shard order. Seq numbers remain shard-local.
func (c *Cluster) AuditEvents(actor string, q audit.Query) ([]audit.Event, error) {
	return c.AuditEventsCtx(context.Background(), actor, q)
}

// AuditEventsCtx is AuditEvents under a caller-supplied context.
func (c *Cluster) AuditEventsCtx(ctx context.Context, actor string, q audit.Query) ([]audit.Event, error) {
	if c.single() {
		return c.shards[0].AuditEventsCtx(ctx, actor, q)
	}
	res := make([][]audit.Event, len(c.shards))
	var firstErr error
	for i, v := range c.shards {
		evs, err := v.AuditEventsCtx(ctx, actor, q)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		res[i] = evs
	}
	if firstErr != nil {
		return nil, firstErr
	}
	var merged []audit.Event
	for _, evs := range res {
		merged = append(merged, evs...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		return merged[i].Timestamp.Before(merged[j].Timestamp)
	})
	return merged, nil
}

// AccountingOfDisclosures fans the statutory accounting across shards:
// every shard audits the query decision (sequentially, in shard order),
// then each shard reconstructs the disclosures of the records it holds, and
// the per-shard ledgers are concatenated in shard order and stably sorted
// by timestamp — the same final ordering pass a single vault applies, so
// ties keep shard order deterministically.
func (c *Cluster) AccountingOfDisclosures(actor, mrn string) ([]Disclosure, error) {
	return c.AccountingOfDisclosuresCtx(context.Background(), actor, mrn)
}

// AccountingOfDisclosuresCtx is AccountingOfDisclosures under a
// caller-supplied context.
func (c *Cluster) AccountingOfDisclosuresCtx(ctx context.Context, actor, mrn string) (_ []Disclosure, retErr error) {
	if c.single() {
		return c.shards[0].AccountingOfDisclosuresCtx(ctx, actor, mrn)
	}
	ctx, sp := obs.StartSpan(ctx, "core.disclosures")
	defer func() { sp.End(retErr) }()
	// Every shard audits the query decision before any denial is reported:
	// the accounting request itself is disclosable activity on every shard.
	var firstErr error
	for _, v := range c.shards {
		if err := v.disclosureQueryAudit(ctx, actor); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if mrn == "" {
		return nil, fmt.Errorf("core: empty MRN")
	}
	var out []Disclosure
	found := false
	for _, v := range c.shards {
		if err := v.gate.begin(); err != nil {
			return nil, err
		}
		ds, ok := v.disclosuresScan(mrn)
		v.gate.end()
		found = found || ok
		out = append(out, ds...)
	}
	if !found {
		return nil, fmt.Errorf("%w: no records for MRN %s", ErrNotFound, mrn)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp.Before(out[j].Timestamp) })
	return out, nil
}

// VerifyAll runs the full integrity sweep on every shard concurrently and
// sums the reports. A wedged or tampered shard fails the sweep with its
// shard index named, without masking its siblings — every shard is swept
// and every failure is reported, in shard order.
//
// Remembered heads and checkpoints are shard-local artifacts: with more
// than one shard, hand each back to its own shard via Shard(i).VerifyAll;
// passing them here is rejected rather than misverified.
func (c *Cluster) VerifyAll(rememberedHeads []merkle.SignedTreeHead, rememberedCheckpoints []audit.Checkpoint) (Report, error) {
	if c.single() {
		return c.shards[0].VerifyAll(rememberedHeads, rememberedCheckpoints)
	}
	if len(rememberedHeads) > 0 || len(rememberedCheckpoints) > 0 {
		return Report{}, fmt.Errorf("core: remembered heads and checkpoints are per-shard; verify them via Shard(i).VerifyAll")
	}
	reports := make([]Report, len(c.shards))
	err := c.fanOut(func(i int, v *Vault) error {
		rep, err := v.VerifyAll(nil, nil)
		reports[i] = rep
		return err
	})
	var total Report
	for _, rep := range reports {
		total.RecordsChecked += rep.RecordsChecked
		total.VersionsChecked += rep.VersionsChecked
		total.AuditEvents += rep.AuditEvents
		total.ProvenanceChains += rep.ProvenanceChains
		total.HeadsChecked += rep.HeadsChecked
		total.CheckpointsProven += rep.CheckpointsProven
	}
	return total, err
}

// SanitizeMedia sweeps every shard in shard order and sums the results.
func (c *Cluster) SanitizeMedia(actor string) (dropped int, reclaimed int64, err error) {
	if c.single() {
		return c.shards[0].SanitizeMedia(actor)
	}
	var failed []error
	for i, v := range c.shards {
		d, r, err := v.SanitizeMedia(actor)
		dropped += d
		reclaimed += r
		if err != nil {
			failed = append(failed, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return dropped, reclaimed, errors.Join(failed...)
}

// RecordIDs merges every shard's live record IDs into one sorted list.
func (c *Cluster) RecordIDs() []string {
	if c.single() {
		return c.shards[0].RecordIDs()
	}
	var out []string
	for _, v := range c.shards {
		out = append(out, v.RecordIDs()...)
	}
	sort.Strings(out)
	return out
}

// ExpiredRecords returns the cluster-wide disposition work list from the
// shared retention manager (already globally sorted).
func (c *Cluster) ExpiredRecords() []string { return c.ret.Expired() }
