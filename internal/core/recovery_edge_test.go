package core

import (
	"errors"
	"strings"
	"testing"

	"medvault/internal/faultfs"
)

// putTwo opens a vault over fsys, stores two records, and returns their
// bodies. The vault is left open; callers crash it however they like.
func putTwo(t *testing.T, fsys faultfs.FS) (*Cluster, [2]string) {
	t.Helper()
	v, vc, err := openTorture(fsys, 1)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var bodies [2]string
	for i := 0; i < 2; i++ {
		rec := tortureRecord([]string{"edge-a", "edge-b"}[i], 1, vc.Now())
		if _, err := v.Put("dr-house", rec); err != nil {
			t.Fatalf("Put: %v", err)
		}
		bodies[i] = rec.Body
	}
	return v, bodies
}

// reopenAndCheck mounts img, reopens the vault, and asserts both records
// read back exactly and full verification passes.
func reopenAndCheck(t *testing.T, img *faultfs.Mem, bodies [2]string) {
	t.Helper()
	v, _, err := openTorture(img, 1)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer v.Close()
	for i, id := range []string{"edge-a", "edge-b"} {
		rec, _, err := v.GetVersion("dr-house", id, 1)
		if err != nil {
			t.Fatalf("GetVersion(%s): %v", id, err)
		}
		if rec.Body != bodies[i] {
			t.Fatalf("%s body mismatch after recovery", id)
		}
	}
	if _, err := v.VerifyAll(nil, nil); err != nil {
		t.Fatalf("VerifyAll after recovery: %v", err)
	}
}

// TestRecoverySnapshotTmpLeftBehind: power cut at the snapshot's rename
// during Close leaves meta.snap.tmp next to an absent (or stale) snapshot.
// Recovery must come up from the WAL alone and ignore the tmp.
func TestRecoverySnapshotTmpLeftBehind(t *testing.T) {
	mem := faultfs.NewMem()
	fsys := faultfs.NewFaulty(mem, func(op faultfs.Op) *faultfs.Fault {
		if op.Kind == faultfs.OpRename && strings.Contains(op.Path, "meta.snap") {
			return &faultfs.Fault{Crash: true}
		}
		return nil
	})
	v, bodies := putTwo(t, fsys)
	if err := v.Close(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("Close under crash injection: %v", err)
	}
	img := mem.CrashImage(faultfs.KeepAll)
	if _, err := img.Stat("vault/meta.snap.tmp"); err != nil {
		t.Fatalf("expected stale snapshot tmp in crash image: %v", err)
	}
	if _, err := img.Stat("vault/meta.snap"); err == nil {
		t.Fatal("snapshot rename should not have completed")
	}
	reopenAndCheck(t, img, bodies)
}

// TestDoubleRecoveryAfterSnapshotWithoutCheckpoint: power cut between the
// snapshot rename and the WAL checkpoint leaves a fresh snapshot AND a full
// WAL — every entry the snapshot already covers gets replayed over it.
// Replay must be idempotent, and a second close/reopen cycle (which writes
// its own snapshot) must land in the same state.
func TestDoubleRecoveryAfterSnapshotWithoutCheckpoint(t *testing.T) {
	mem := faultfs.NewMem()
	fsys := faultfs.NewFaulty(mem, func(op faultfs.Op) *faultfs.Fault {
		if op.Kind == faultfs.OpRename && strings.Contains(op.Path, "meta.wal") {
			return &faultfs.Fault{Crash: true}
		}
		return nil
	})
	v, bodies := putTwo(t, fsys)
	if err := v.Close(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("Close under crash injection: %v", err)
	}
	img := mem.CrashImage(faultfs.KeepAll)
	if _, err := img.Stat("vault/meta.snap"); err != nil {
		t.Fatalf("snapshot should be in place: %v", err)
	}
	if st, err := img.Stat("vault/meta.wal"); err != nil || st.Size() == 0 {
		t.Fatalf("WAL should still hold the un-checkpointed entries: %v", err)
	}
	// First recovery replays the WAL over the snapshot; second recovery
	// proves the first one converged (clean Close inside reopenAndCheck,
	// then reopen and re-verify).
	reopenAndCheck(t, img, bodies)
	reopenAndCheck(t, img, bodies)
}

// TestRecoveryEmptyWAL: a vault that crashed right after its stores were
// created — WAL file present but empty, no snapshot — opens as an empty
// vault rather than failing.
func TestRecoveryEmptyWAL(t *testing.T) {
	mem := faultfs.NewMem()
	v, _, err := openTorture(mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2, _, err := openTorture(mem, 1)
	if err != nil {
		t.Fatalf("reopen of empty vault: %v", err)
	}
	defer v2.Close()
	if n := v2.Len(); n != 0 {
		t.Fatalf("empty vault has %d records", n)
	}
	if _, err := v2.VerifyAll(nil, nil); err != nil {
		t.Fatalf("VerifyAll on empty vault: %v", err)
	}
}
