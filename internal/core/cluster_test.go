package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"medvault/internal/audit"
	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/vcrypto"
)

// TestShardOfGolden pins the record→shard mapping. These values are part of
// the durable format: a record is stored on the shard ShardOf names, so any
// change here silently strands every record in an existing multi-shard
// cluster. Changing the hash requires a deliberate format bump with a
// migration path — update these constants only as part of one.
func TestShardOfGolden(t *testing.T) {
	golden := []struct {
		id      string
		n       int
		want    int
	}{
		{"", 2, 1}, {"", 4, 1}, {"", 8, 5},
		{"rec-0001", 2, 1}, {"rec-0001", 4, 3}, {"rec-0001", 8, 7},
		{"rec-0002", 2, 0}, {"rec-0002", 4, 2}, {"rec-0002", 8, 2},
		{"rec-0003", 2, 1}, {"rec-0003", 4, 1}, {"rec-0003", 8, 5},
		{"rec-0004", 2, 0}, {"rec-0004", 4, 0}, {"rec-0004", 8, 0},
		{"mrn-784-a", 2, 0}, {"mrn-784-a", 4, 2}, {"mrn-784-a", 8, 6},
		{"smoke-1", 2, 0}, {"smoke-1", 4, 0}, {"smoke-1", 8, 0},
		{"scale-w0-g0-0", 2, 0}, {"scale-w0-g0-0", 4, 0}, {"scale-w0-g0-0", 8, 0},
		{"scale-w3-g1-7", 2, 1}, {"scale-w3-g1-7", 4, 1}, {"scale-w3-g1-7", 8, 1},
		{"patient/9f31", 2, 0}, {"patient/9f31", 4, 0}, {"patient/9f31", 8, 0},
		{"ehr-2026-000042", 2, 0}, {"ehr-2026-000042", 4, 0}, {"ehr-2026-000042", 8, 4},
		{"z", 2, 1}, {"z", 4, 1}, {"z", 8, 5},
	}
	for _, g := range golden {
		if got := ShardOf(g.id, g.n); got != g.want {
			t.Errorf("ShardOf(%q, %d) = %d, want %d (hash change = format break)", g.id, g.n, got, g.want)
		}
	}
	// Degenerate shapes route to shard 0 rather than dividing by zero.
	for _, n := range []int{-3, 0, 1} {
		if got := ShardOf("anything", n); got != 0 {
			t.Errorf("ShardOf(_, %d) = %d, want 0", n, got)
		}
	}
}

// TestShardOfSpread sanity-checks the distribution: across a few thousand
// realistic IDs no shard of 4 should be starved or hot.
func TestShardOfSpread(t *testing.T) {
	counts := make([]int, 4)
	total := 4000
	for i := 0; i < total; i++ {
		counts[ShardOf(fmt.Sprintf("rec-%06d", i), 4)]++
	}
	for s, n := range counts {
		if n < total/8 || n > total/2 {
			t.Errorf("shard %d got %d of %d ids", s, n, total)
		}
	}
}

// auditKey projects an audit event onto its behavioral fields (everything a
// caller or compliance officer observes; chain internals like MACs are
// covered by VerifyAll).
func auditKey(e audit.Event) string {
	return fmt.Sprintf("%d|%s|%s|%s|%d|%s|%s|%s",
		e.Seq, e.Timestamp.Format(time.RFC3339Nano), e.Actor, e.Action, e.Version, e.Record, e.Outcome, e.Detail)
}

// driveWorkload runs the scripted compliance workload against any API
// implementation, returning the errors observed (for cross-run comparison).
func driveWorkload(t *testing.T, v API, vc *clock.Virtual) []string {
	t.Helper()
	var outcomes []string
	note := func(step string, err error) {
		outcomes = append(outcomes, fmt.Sprintf("%s: err=%v", step, err))
	}
	recs := clinicalRecords(t, 100, 7)
	denied := recs[6]
	recs = recs[:6]
	for i, r := range recs {
		_, err := v.Put("dr-house", r)
		note(fmt.Sprintf("put-%d", i), err)
	}
	vc.Advance(time.Hour)
	_, _, err := v.Get("nurse-joy", recs[0].ID)
	note("get-nurse", err)
	_, err = v.Put("nurse-joy", denied)
	note("put-denied", err)
	_, _, err = v.Get("dr-house", "no-such-record")
	note("get-missing", err)
	fix := recs[1]
	fix.Body = "corrected " + fix.Body
	_, err = v.Correct("dr-house", fix)
	note("correct", err)
	err = v.BreakGlass("clerk-bob", "er consult", 30*time.Minute)
	note("break-glass", err)
	_, _, err = v.Get("clerk-bob", recs[2].ID)
	note("get-break-glass", err)
	err = v.PlaceHold("officer-kim", recs[3].ID, "litigation 44-B")
	note("hold", err)
	err = v.Shred("arch-lee", recs[3].ID)
	note("shred-held", err)
	err = v.ReleaseHold("officer-kim", recs[3].ID)
	note("release", err)
	vc.Advance(time.Hour)
	ids, err := v.Search("dr-house", strings.Fields(recs[4].Title)[0])
	note(fmt.Sprintf("search(%d)", len(ids)), err)
	_, err = v.AccountingOfDisclosures("officer-kim", recs[0].MRN)
	note("disclosures", err)
	_, err = v.History("dr-house", recs[1].ID)
	note("history", err)
	return outcomes
}

// TestClusterOneShardEquivalence pins the tentpole's core promise: a
// one-shard cluster is behaviorally identical to a bare vault. The same
// scripted workload runs against both, and the audit journal (every field a
// caller observes), the VerifyAll report, the tree-head size, and every
// step's error must match exactly.
func TestClusterOneShardEquivalence(t *testing.T) {
	master, err := vcrypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	vcA, vcB := clock.NewVirtual(testEpoch), clock.NewVirtual(testEpoch)
	bare, err := Open(Config{Name: "equiv", Master: master, Clock: vcA})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	clu, err := OpenCluster(Config{Name: "equiv", Master: master, Clock: vcB}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	registerStaff(t, bare)
	registerStaffAPI(t, clu)

	outA := driveWorkload(t, bare, vcA)
	outB := driveWorkload(t, clu, vcB)
	if !reflect.DeepEqual(outA, outB) {
		t.Errorf("workload outcomes diverge:\nbare:    %v\ncluster: %v", outA, outB)
	}

	repA, errA := bare.VerifyAll(nil, nil)
	repB, errB := clu.VerifyAll(nil, nil)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("VerifyAll errors diverge: %v vs %v", errA, errB)
	}
	if repA != repB {
		t.Errorf("VerifyAll reports diverge:\nbare:    %+v\ncluster: %+v", repA, repB)
	}
	headsA, headsB := bare.Heads(), clu.Heads()
	if len(headsB) != 1 || headsA[0].Size != headsB[0].Size {
		t.Errorf("heads diverge: bare size %d, cluster %v", headsA[0].Size, headsB)
	}

	evA, err := bare.AuditEvents("officer-kim", audit.Query{})
	if err != nil {
		t.Fatal(err)
	}
	evB, err := clu.AuditEvents("officer-kim", audit.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(evA) != len(evB) {
		t.Fatalf("audit journal lengths diverge: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if auditKey(evA[i]) != auditKey(evB[i]) {
			t.Errorf("audit event %d diverges:\nbare:    %s\ncluster: %s", i, auditKey(evA[i]), auditKey(evB[i]))
		}
	}
}

func registerStaffAPI(t *testing.T, v API) {
	t.Helper()
	a := v.Authz()
	for _, r := range authz.StandardRoles() {
		a.DefineRole(r)
	}
	for id, role := range map[string]string{
		"dr-house":    "physician",
		"nurse-joy":   "nurse",
		"clerk-bob":   "billing-clerk",
		"officer-kim": "compliance-officer",
		"arch-lee":    "archivist",
	} {
		if err := a.AddPrincipal(id, role); err != nil {
			t.Fatal(err)
		}
	}
}

// newCluster builds a memory-backed n-shard cluster with staff registered.
func newCluster(t *testing.T, n int) (*Cluster, *clock.Virtual) {
	t.Helper()
	master, err := vcrypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	vc := clock.NewVirtual(testEpoch)
	c, err := OpenCluster(Config{Name: "cluster-test", Master: master, Clock: vc}, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	registerStaffAPI(t, c)
	return c, vc
}

// TestClusterRoutingAndMerge exercises the basic cluster contract: records
// land on their hashed shard, cluster-wide observables are merged sorted
// unions, and cross-shard search/disclosures see everything.
func TestClusterRoutingAndMerge(t *testing.T) {
	c, _ := newCluster(t, 4)
	var ids []string
	perShard := make([]int, 4)
	for i, rec := range clinicalRecords(t, 300, 12) {
		if _, err := c.Put("dr-house", rec); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		ids = append(ids, rec.ID)
		perShard[ShardOf(rec.ID, 4)]++
	}
	if c.Len() != 12 {
		t.Errorf("Len = %d", c.Len())
	}
	for s := 0; s < 4; s++ {
		if got := c.Shard(s).Len(); got != perShard[s] {
			t.Errorf("shard %d holds %d records, want %d", s, got, perShard[s])
		}
		if got := c.Shard(s).Head().Size; got != uint64(perShard[s]) {
			t.Errorf("shard %d head size %d, want %d", s, got, perShard[s])
		}
	}
	sort.Strings(ids)
	if got := c.RecordIDs(); !reflect.DeepEqual(got, ids) {
		t.Errorf("RecordIDs = %v, want %v", got, ids)
	}
	for _, id := range ids {
		if _, _, err := c.Get("dr-house", id); err != nil {
			t.Errorf("get %s: %v", id, err)
		}
	}
	rep, err := c.VerifyAll(nil, nil)
	if err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
	if rep.RecordsChecked != 12 || rep.VersionsChecked != 12 {
		t.Errorf("report = %+v", rep)
	}
	if len(c.Heads()) != 4 {
		t.Errorf("Heads = %d", len(c.Heads()))
	}
	// Per-shard remembered heads verify against their own shard.
	heads := c.Heads()
	for s := 0; s < 4; s++ {
		if _, err := c.Shard(s).VerifyAll(heads[s:s+1], nil); err != nil {
			t.Errorf("shard %d VerifyAll with remembered head: %v", s, err)
		}
	}
	// Cluster-level VerifyAll refuses ambiguous remembered artifacts.
	if _, err := c.VerifyAll(heads[:1], nil); err == nil {
		t.Error("cluster VerifyAll accepted a remembered head it cannot attribute")
	}
}

// TestClusterFanOutErrorAggregation wedges one shard (by closing it behind
// the cluster's back) and checks that fan-out operations report that shard's
// failure by index without masking the healthy shards.
func TestClusterFanOutErrorAggregation(t *testing.T) {
	c, _ := newCluster(t, 2)
	for _, rec := range clinicalRecords(t, 400, 6) {
		if _, err := c.Put("dr-house", rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Shard(1).Close(); err != nil {
		t.Fatal(err)
	}

	_, err := c.VerifyAll(nil, nil)
	if err == nil {
		t.Fatal("VerifyAll succeeded with a dead shard")
	}
	if !strings.Contains(err.Error(), "shard 1:") {
		t.Errorf("error does not name shard 1: %v", err)
	}
	if strings.Contains(err.Error(), "shard 0:") {
		t.Errorf("healthy shard 0 reported as failed: %v", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Errorf("wrapped sentinel lost: %v", err)
	}
	// The healthy shard still verifies on its own.
	if _, err := c.Shard(0).VerifyAll(nil, nil); err != nil {
		t.Errorf("healthy shard broken by sibling failure: %v", err)
	}

	h := c.Health()
	if h.Open {
		t.Error("cluster reports Open with a closed shard")
	}
	per := c.ShardHealths()
	if !per[0].Open || per[1].Open {
		t.Errorf("per-shard health wrong: %+v", per)
	}

	// Closing the cluster reports only the already-closed shard's... nothing:
	// Vault.Close on a closed vault is a no-op nil, so Close succeeds.
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestOpenClusterLayout covers the durable layout rules: the manifest pins
// the shard count, shards=0 adopts it, mismatches and sharding over a
// single-vault directory are refused, and one shard stays manifest-free.
func TestOpenClusterLayout(t *testing.T) {
	master, err := vcrypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	vc := clock.NewVirtual(testEpoch)
	dir := t.TempDir()

	c, err := OpenCluster(Config{Name: "layout", Master: master, Clock: vc, Dir: dir}, 3)
	if err != nil {
		t.Fatal(err)
	}
	registerStaffAPI(t, c)
	for _, rec := range clinicalRecords(t, 500, 5) {
		if _, err := c.Put("dr-house", rec); err != nil {
			t.Fatal(err)
		}
	}
	want := c.RecordIDs()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenCluster(Config{Name: "layout", Master: master, Clock: vc, Dir: dir}, 2); err == nil {
		t.Fatal("shard-count change accepted on reopen")
	}

	// shards=0 adopts the manifest.
	c2, err := OpenCluster(Config{Name: "layout", Master: master, Clock: vc, Dir: dir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumShards() != 3 {
		t.Errorf("adopted %d shards, want 3", c2.NumShards())
	}
	if got := c2.RecordIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("records after reopen = %v, want %v", got, want)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	// A single-vault directory cannot be sharded in place.
	soloDir := t.TempDir()
	solo, err := Open(Config{Name: "solo", Master: master, Clock: vc, Dir: soloDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCluster(Config{Name: "solo", Master: master, Clock: vc, Dir: soloDir}, 4); err == nil {
		t.Fatal("sharding over a single-vault layout accepted")
	}
	// But it reopens fine as a one-shard cluster, manifest-free.
	c3, err := OpenCluster(Config{Name: "solo", Master: master, Clock: vc, Dir: soloDir}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(soloDir, clusterManifest)); err == nil {
		t.Fatal("one-shard cluster wrote a manifest into a single-vault layout")
	}

	if _, err := OpenCluster(Config{Master: master, Clock: vc}, -1); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := OpenCluster(Config{Master: master, Clock: vc}, MaxShards+1); err == nil {
		t.Error("oversized shard count accepted")
	}
}
