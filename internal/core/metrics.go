package core

import (
	"context"
	"errors"
	"time"

	"medvault/internal/audit"
	"medvault/internal/obs"
)

// Vault-level instrumentation. Every public operation reports its latency
// and outcome here, giving the top line of the security-vs-performance
// accounting; the per-mechanism histograms (crypto, index, audit, WAL,
// blockstore) recorded by the lower layers explain where that time went.
var (
	metLiveRecords = obs.Default.Gauge("medvault_records_live",
		"Live (non-shredded) records across vaults in this process.")
	metProvenanceErrors = obs.Default.Counter("medvault_provenance_append_errors_total",
		"Custody-chain appends that failed after the operation's state was already committed.")
	metInflightOps = obs.Default.Gauge("medvault_core_inflight_ops",
		"Vault operations currently executing in this process.")
)

// TraceShipper is implemented by filesystems that forward observability
// markers to a replication peer. A replicating primary's capture FS ships
// the originating trace ID alongside the op's own frames, so a write on the
// primary is joinable to its apply event in the follower's flight recorder.
type TraceShipper interface {
	ShipTrace(trace, op, recordHash string)
}

// mutatingOps name the operations whose trace IDs are worth shipping to a
// follower: the ones that produce apply events there.
var mutatingOps = map[string]bool{"put": true, "correct": true, "shred": true}

// observeOp is deferred at the top of each vault operation:
//
//	defer v.observeOp(ctx, "put", rec.ID, time.Now())(&err)
//
// The outer call captures the start time, raises the in-flight gauge, and
// registers the op with the watchdog's in-flight tracker. The returned func
// reads the named error at return time and records one latency observation,
// one outcome-labeled count, and one flight-recorder event (hashed record
// ID, trace ID, outcome, latency — never plaintext). Shards of a
// multi-shard Cluster add a shard label so /metrics breaks the top line
// down per shard; a standalone vault (and a one-shard cluster) keeps the
// exact label set it always had.
//
// Ordering matters for the crash invariant: the closure runs after the
// operation has fully returned, i.e. after any WAL group-commit fsync for
// an acked write. A flight event persisted by the (unsynced) sink therefore
// implies its WAL entry was already durable, so the persisted flight tail
// can never claim an op the recovered vault does not have.
func (v *Vault) observeOp(ctx context.Context, op, id string, start time.Time) func(*error) {
	metInflightOps.Add(1)
	slot := obs.ActiveOps.Begin()
	return func(errp *error) {
		metInflightOps.Add(-1)
		obs.ActiveOps.End(slot)
		outcome := outcomeLabel(*errp)
		labels := []obs.Label{obs.L("op", op), obs.L("outcome", outcome)}
		if v.shard != "" {
			labels = append(labels, obs.L("shard", v.shard))
		}
		obs.Default.Counter("medvault_core_ops_total",
			"Vault operations by outcome.", labels...).Inc()
		obs.Default.Histogram("medvault_core_op_seconds",
			"Vault operation latency.", obs.LatencyBuckets,
			labels...).ObserveSince(start)

		ev := v.flight.Record(obs.FlightEvent{
			Kind:    op,
			Record:  obs.HashRecordID(id),
			Trace:   obs.TraceID(ctx),
			Outcome: outcome,
			Dur:     time.Since(start),
			Shard:   v.shard,
		})
		if v.fsink != nil {
			v.fsink.Append(ev)
		}
		if outcome == "ok" && ev.Trace != "" && mutatingOps[op] {
			if ts, ok := v.fs.(TraceShipper); ok {
				ts.ShipTrace(ev.Trace, op, ev.Record)
			}
		}
	}
}

// span starts an operation span, stamping the shard attribute when this
// vault is a shard of a multi-shard cluster. All core operation spans go
// through here so /debug/traces shows which shard served each step.
func (v *Vault) span(ctx context.Context, name string) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, name)
	if v.shard != "" {
		sp.SetAttr("shard", v.shard)
	}
	return ctx, sp
}

// outcomeLabel buckets an operation error into a low-cardinality label.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrDenied):
		return "denied"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	case errors.Is(err, ErrShredded):
		return "shredded"
	case errors.Is(err, ErrExists):
		return "exists"
	case errors.Is(err, ErrTampered):
		return "tampered"
	default:
		return "error"
	}
}

// provenanceWarn surfaces a custody-chain append failure that happened after
// the operation's state was already durably committed. Failing the operation
// at that point would lie to the caller — the version exists, is indexed,
// and is Merkle-committed, so a retried Put would hit ErrExists — therefore
// the gap is reported as a post-commit warning: an audit event with an error
// outcome plus a counter alerting operators that a chain is incomplete.
func (v *Vault) provenanceWarn(ctx context.Context, action audit.Action, actor, id string, err error) {
	metProvenanceErrors.Inc()
	_, _ = v.aud.AppendCtx(ctx, audit.Event{
		Actor: actor, Action: action, Record: id,
		Outcome: audit.OutcomeError,
		Detail:  "custody chain append failed after commit: " + err.Error(),
	})
}
