package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"medvault/internal/audit"
	"medvault/internal/ehr"
	"medvault/internal/merkle"
	"medvault/internal/stores"
	"medvault/internal/vcrypto"
)

// These tests pin the vault's headline property: every insider attack the
// paper worries about is detected.

func newAdapter(t *testing.T) (*Adapter, *Vault) {
	t.Helper()
	v, _ := newVault(t)
	a, err := NewAdapter(v)
	if err != nil {
		t.Fatal(err)
	}
	return a, v
}

func TestAdapterConformance(t *testing.T) {
	a, _ := newAdapter(t)
	recs := ehr.NewGenerator(20, testEpoch).Corpus(15)
	for _, r := range recs {
		if err := a.Put(r); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := a.Put(recs[0]); !errors.Is(err, stores.ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	got, err := a.Get(recs[3].ID)
	if err != nil || got.Body != recs[3].Body {
		t.Errorf("Get: %v", err)
	}
	if _, err := a.Get("ghost"); !errors.Is(err, stores.ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
	if err := a.Verify(); err != nil {
		t.Errorf("clean verify: %v", err)
	}
	if a.Len() != 15 {
		t.Errorf("Len = %d", a.Len())
	}
	hits, err := a.Search(ehr.CommonCondition())
	if err != nil || len(hits) == 0 {
		t.Errorf("Search: %d hits, %v", len(hits), err)
	}
}

func TestVaultDetectsCiphertextTamper(t *testing.T) {
	a, _ := newAdapter(t)
	recs := ehr.NewGenerator(21, testEpoch).Corpus(10)
	for _, r := range recs {
		if err := a.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.TamperRecord(recs[5].ID, func(b []byte) []byte {
		b[len(b)/2] ^= 0xFF
		return b
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); !errors.Is(err, stores.ErrTampered) {
		t.Errorf("tamper undetected by Verify: %v", err)
	}
	if _, err := a.Get(recs[5].ID); err == nil {
		t.Error("tampered record served")
	}
}

func TestVaultDetectsMetadataRollback(t *testing.T) {
	a, v := newAdapter(t)
	g := ehr.NewGenerator(22, testEpoch)
	rec := g.Next()
	if err := a.Put(rec); err != nil {
		t.Fatal(err)
	}
	corr := g.Correction(rec)
	if err := a.Correct(corr); err != nil {
		t.Fatal(err)
	}
	// Insider hides the correction by truncating the version list.
	if err := a.RollbackMetadata(rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyAll(nil, nil); !errors.Is(err, ErrTampered) {
		t.Errorf("metadata rollback undetected: %v", err)
	}
}

func TestVaultDetectsHistoryRewriteViaRememberedHead(t *testing.T) {
	// Two vaults share the same master (same signing identity). The evil
	// one rewrites an early record. Against a remembered head from the
	// honest vault, the evil vault cannot prove consistency.
	master, err := vcrypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Vault {
		v, err := Open(Config{Name: name, Master: master})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { v.Close() })
		registerStaff(t, v)
		return v
	}
	honest, evil := mk("honest"), mk("evil")
	g1 := ehr.NewGenerator(23, testEpoch)
	g2 := ehr.NewGenerator(23, testEpoch)
	for i := 0; i < 10; i++ {
		r1, r2 := g1.Next(), g2.Next()
		if i == 3 {
			r2.Body = "REWRITTEN HISTORY"
		}
		actor := "dr-house"
		if r1.Category == ehr.CategoryBilling {
			actor = "clerk-bob"
		}
		if r1.Category == ehr.CategoryOccupational {
			continue
		}
		if _, err := honest.Put(actor, r1); err != nil {
			t.Fatal(err)
		}
		if _, err := evil.Put(actor, r2); err != nil {
			t.Fatal(err)
		}
	}
	remembered := honest.Head()
	if _, err := honest.VerifyAll([]merkle.SignedTreeHead{remembered}, nil); err != nil {
		t.Errorf("honest vault failed: %v", err)
	}
	if _, err := evil.VerifyAll([]merkle.SignedTreeHead{remembered}, nil); !errors.Is(err, ErrTampered) {
		t.Errorf("history rewrite undetected: %v", err)
	}
}

func TestVaultAtRestLeaksNothing(t *testing.T) {
	a, _ := newAdapter(t)
	recs := ehr.NewGenerator(24, testEpoch).Corpus(20)
	for _, r := range recs {
		if err := a.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	raw := a.RawBytes()
	if len(raw) == 0 {
		t.Fatal("RawBytes empty")
	}
	for _, r := range recs[:5] {
		if bytes.Contains(raw, []byte(r.Patient)) {
			t.Errorf("patient name %q visible at rest", r.Patient)
		}
		if bytes.Contains(raw, []byte(r.Body)) {
			t.Error("record body visible at rest")
		}
	}
	for _, kw := range ehr.ConditionNames()[:3] {
		if bytes.Contains(raw, []byte(kw)) {
			t.Errorf("index keyword %q visible at rest", kw)
		}
	}
}

func TestShredLeavesNoRecoverablePlaintext(t *testing.T) {
	a, v := newAdapter(t)
	rec := ehr.NewGenerator(25, testEpoch).Next()
	rec.CreatedAt = testEpoch.Add(-40 * 365 * 24 * time.Hour) // long expired
	if err := a.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := a.Dispose(rec.ID); err != nil {
		t.Fatalf("Dispose: %v", err)
	}
	if bytes.Contains(a.RawBytes(), []byte(rec.Patient)) {
		t.Error("plaintext recoverable after shred")
	}
	// Even the vault itself, holding every surviving key, cannot read it.
	if _, _, err := v.Get("dr-house", rec.ID); !errors.Is(err, ErrShredded) {
		t.Errorf("Get after shred: %v", err)
	}
}

func TestAuditChainSurvivesAndDetects(t *testing.T) {
	_, v := newAdapter(t)
	rec := clinicalRecord(t, 26)
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := v.Get("dr-house", rec.ID); err != nil {
			t.Fatal(err)
		}
	}
	events, err := v.AuditEvents("officer-kim", audit.Query{Record: rec.ID, Action: audit.ActionRead})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Errorf("audited %d reads, want 5", len(events))
	}
	// Every event names the actor and outcome.
	for _, e := range events {
		if e.Actor != "dr-house" || e.Outcome != audit.OutcomeAllowed {
			t.Errorf("event malformed: %s", e)
		}
		if strings.Contains(e.Detail, rec.Patient) {
			t.Error("audit detail contains PHI")
		}
	}
}
