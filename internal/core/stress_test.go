package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"medvault/internal/ehr"
	"medvault/internal/merkle"
)

// TestConcurrentMixedOpsDurable drives mixed Put/Correct/Get/GetVersion/
// History/Search traffic against one durable (file-backed, WAL-logged) vault
// from many goroutines, then demands a clean full integrity sweep — and a
// second one after crash-free reopen. Run with -race: the test exists to
// catch lock-ordering and shared-state mistakes across the instrumented hot
// paths as much as logical corruption.
func TestConcurrentMixedOpsDurable(t *testing.T) {
	master := mustKey(t)
	dir := t.TempDir()
	v, err := Open(Config{Name: "stress-test", Master: master, Clock: mustClock(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	registerStaff(t, v)

	const (
		writers   = 4
		readers   = 4
		perWriter = 12
	)
	recID := func(w, i int) string { return fmt.Sprintf("stress-w%d-r%d", w, i) }
	record := func(w, i int) ehr.Record {
		return ehr.Record{
			ID: recID(w, i), Patient: "Stress Patient", MRN: fmt.Sprintf("mrn-%d-%d", w, i),
			Category: ehr.CategoryClinical, Author: "dr-house", CreatedAt: testEpoch,
			Title: "stress note", Body: fmt.Sprintf("hypertension follow-up %d-%d", w, i),
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := record(w, i)
				if _, err := v.Put("dr-house", rec); err != nil {
					errc <- fmt.Errorf("writer %d: Put %s: %w", w, rec.ID, err)
					return
				}
				if i%3 == 0 {
					rec.Body += " — amended"
					if _, err := v.Correct("dr-house", rec); err != nil {
						errc <- fmt.Errorf("writer %d: Correct %s: %w", w, rec.ID, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter*2; i++ {
				id := recID(r%writers, i%perWriter)
				// Concurrent readers race the writers, so ErrNotFound is a
				// legitimate outcome; anything else is not.
				if _, _, err := v.Get("dr-house", id); err != nil && !errors.Is(err, ErrNotFound) {
					errc <- fmt.Errorf("reader %d: Get %s: %w", r, id, err)
					return
				}
				if _, _, err := v.GetVersion("dr-house", id, 1); err != nil && !errors.Is(err, ErrNotFound) {
					errc <- fmt.Errorf("reader %d: GetVersion %s: %w", r, id, err)
					return
				}
				if _, err := v.History("dr-house", id); err != nil && !errors.Is(err, ErrNotFound) {
					errc <- fmt.Errorf("reader %d: History %s: %w", r, id, err)
					return
				}
				if _, err := v.Search("dr-house", "hypertension"); err != nil {
					errc <- fmt.Errorf("reader %d: Search: %w", r, err)
					return
				}
			}
		}(r)
	}
	// Compliance traffic rides along with the clinical load: legal holds
	// placed and released (archivist), an emergency break-glass grant with
	// elevated reads (billing clerk), and record exports (archivist). All of
	// these race the writers, so ErrNotFound is legitimate; any other failure
	// is a bug in the lock layering.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perWriter*writers; i++ {
			id := recID(i%writers, i%perWriter)
			err := v.PlaceHold("arch-lee", id, "stress-test litigation hold")
			if errors.Is(err, ErrNotFound) {
				continue
			}
			if err != nil {
				errc <- fmt.Errorf("hold: PlaceHold %s: %w", id, err)
				return
			}
			if err := v.ReleaseHold("arch-lee", id); err != nil {
				errc <- fmt.Errorf("hold: ReleaseHold %s: %w", id, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := v.BreakGlass("clerk-bob", "stress-test emergency", time.Hour); err != nil {
			errc <- fmt.Errorf("break-glass grant: %w", err)
			return
		}
		for i := 0; i < perWriter*writers; i++ {
			id := recID(i%writers, i%perWriter)
			if _, _, err := v.Get("clerk-bob", id); err != nil && !errors.Is(err, ErrNotFound) {
				errc <- fmt.Errorf("break-glass Get %s: %w", id, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perWriter*writers; i++ {
			id := recID((i+1)%writers, i%perWriter)
			if _, err := v.Export("arch-lee", id); err != nil && !errors.Is(err, ErrNotFound) {
				errc <- fmt.Errorf("Export %s: %w", id, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if v.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", v.Len(), writers*perWriter)
	}
	rep, err := v.VerifyAll(nil, nil)
	if err != nil {
		t.Fatalf("VerifyAll after concurrent load: %v", err)
	}
	if rep.RecordsChecked != writers*perWriter {
		t.Errorf("verified %d records, want %d", rep.RecordsChecked, writers*perWriter)
	}
	head := v.Head()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: recovery must rebuild the same state and still pass
	// a sweep that includes the pre-close tree head.
	v2, err := Open(Config{Name: "stress-test", Master: master, Clock: mustClock(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	registerStaff(t, v2)
	if v2.Len() != writers*perWriter {
		t.Errorf("reopened Len = %d, want %d", v2.Len(), writers*perWriter)
	}
	if _, err := v2.VerifyAll([]merkle.SignedTreeHead{head}, nil); err != nil {
		t.Fatalf("VerifyAll after reopen: %v", err)
	}
}
