// Crash-recovery torture harness.
//
// RunTorture drives a scripted clinical workload against a vault backed by a
// faultfs.Mem disk, enumerates every mutating filesystem operation the
// workload performs, and then re-runs the workload once per operation with a
// simulated power cut (or media fault) injected at that point. After each
// cut it mounts the surviving crash image, reopens the vault, and asserts
// the durability contract:
//
//   - Every operation that was acknowledged before the cut is present and
//     readable after recovery: acked Put/Correct versions decrypt to the
//     exact bodies that were written, acked Shreds stay shredded, acked
//     legal holds are still in force.
//   - VerifyAll passes: the WAL-rebuilt version set matches the Merkle
//     commitment log leaf for leaf, the audit hash chain verifies, and
//     every provenance custody chain verifies.
//   - No plaintext ever touches the medium: the crash image is scanned for
//     sentinel strings embedded in every record body, including shredded
//     ones.
//   - Recovery is idempotent: close and reopen the recovered vault a second
//     time and the same checks hold.
//
// Unacknowledged operations may or may not survive — an ack is a lower
// bound on durability, not an upper one — so the oracle only tracks acks.
//
// Beyond power cuts the harness injects non-crash faults: a failed fsync at
// every sync point (the WAL must wedge rather than ack on a lying disk),
// ENOSPC at every write, and single-bit rot on ciphertext reads (the
// per-block CRC and AEAD tag must turn silent corruption into a loud error,
// never wrong data).
//
// Known gaps, on purpose: SanitizeMedia is not in the workload (its
// rewrite-and-swap has its own tests), and bit rot is injected only under
// read paths of a healthy vault, not during recovery itself — recovery
// treats an unreadable tail as torn, which is the designed response to a
// torn tail but indistinguishable from rot of the final segment.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/ehr"
	"medvault/internal/faultfs"
	"medvault/internal/obs"
	"medvault/internal/vcrypto"
)

// tortureEpoch is the fixed start of vault time in every torture run; all
// scenarios are deterministic given the same build.
var tortureEpoch = time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)

// TortureOpts configures a torture run.
type TortureOpts struct {
	// Quick subsamples the crash-point matrix (roughly one point in five)
	// for CI smoke runs. Injection-point enumeration is always complete.
	Quick bool
	// Shards is the cluster shard count the workload runs against; <= 1
	// tortures the classic single vault. Larger counts spread the scripted
	// records over per-shard WALs, blockstores, and audit chains, so every
	// crash point exercises multi-shard recovery.
	Shards int
	// Stride overrides the subsampling stride; 0 means 1 (every point), or
	// 5 when Quick is set.
	Stride int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// TortureFailure is one violated invariant: which scenario, at which
// injection point, and what broke.
type TortureFailure struct {
	Scenario string // e.g. "crash-after/keep-none"
	Point    int    // mutating-op index the fault was injected at; -1 if n/a
	Detail   string
}

func (f TortureFailure) String() string {
	return fmt.Sprintf("%s point=%d: %s", f.Scenario, f.Point, f.Detail)
}

// TortureReport summarizes a run.
type TortureReport struct {
	InjectionPoints int // distinct mutating fs ops the workload performs
	CrashScenarios  int // power-cut simulations executed
	FaultScenarios  int // non-crash fault simulations (EIO/ENOSPC/bit rot)
	Failures        []TortureFailure
}

// Passed reports whether every invariant held in every scenario.
func (r TortureReport) Passed() bool { return len(r.Failures) == 0 }

// oracle records what the vault acknowledged, so recovery can be audited
// against it. Acked operations are owed durability. An operation that was
// *attempted* but not acked before the cut is ambiguous — its intent may
// have reached the WAL before the crash, so recovery may legitimately land
// it or lose it — and the oracle tolerates either outcome. Sequential use
// only.
type oracle struct {
	bodies   map[string][]string // id -> body per acked version (index = number-1)
	shredded map[string]bool     // acked shreds
	holds    map[string]bool     // acked holds not yet acked-released

	shredTried   map[string]bool // Shred attempted (ack unknown at crash)
	releaseTried map[string]bool // ReleaseHold attempted
}

func newOracle() *oracle {
	return &oracle{
		bodies:       make(map[string][]string),
		shredded:     make(map[string]bool),
		holds:        make(map[string]bool),
		shredTried:   make(map[string]bool),
		releaseTried: make(map[string]bool),
	}
}

// sentinel builds the unique plaintext marker embedded in every version
// body. The crash-image scan greps for sentinelPrefix.
const sentinelPrefix = "TORTURE-SENTINEL"

func sentinel(id string, version int) string {
	return fmt.Sprintf("%s-%s-v%d", sentinelPrefix, id, version)
}

func tortureRecord(id string, version int, at time.Time) ehr.Record {
	return ehr.Record{
		ID:        id,
		Patient:   "Pat Torture",
		MRN:       "mrn-" + id,
		Category:  ehr.CategoryClinical,
		Author:    "dr-house",
		CreatedAt: at,
		Title:     "torture note " + id,
		Body:      fmt.Sprintf("%s hypertension follow-up, dosage adjusted", sentinel(id, version)),
		Codes:     []string{"I10"},
	}
}

// openTorture opens (or reopens) the torture vault over fsys and registers
// the standard staff — authorization state is in-memory by design, so every
// mount re-registers it.
func openTorture(fsys faultfs.FS, shards int) (*Cluster, *clock.Virtual, error) {
	var seed [32]byte
	copy(seed[:], "medvault-torture-master-seed-32b")
	master, err := vcrypto.KeyFromBytes(seed[:])
	if err != nil {
		return nil, nil, err
	}
	vc := clock.NewVirtual(tortureEpoch)
	v, err := OpenCluster(Config{Name: "torture", Master: master, Clock: vc, Dir: "vault", FS: fsys}, shards)
	if err != nil {
		return nil, nil, err
	}
	a := v.Authz()
	for _, r := range authz.StandardRoles() {
		a.DefineRole(r)
	}
	if err := a.AddPrincipal("dr-house", "physician"); err != nil {
		v.Close()
		return nil, nil, err
	}
	if err := a.AddPrincipal("arch-lee", "archivist"); err != nil {
		v.Close()
		return nil, nil, err
	}
	return v, vc, nil
}

// runWorkload executes the scripted workload, recording each acknowledgment
// in o the moment the vault returns success. It aborts at the first error
// (the injected fault) and returns it; everything recorded before that
// moment was acked and is owed durability.
func runWorkload(v *Cluster, vc *clock.Virtual, o *oracle) error {
	put := func(id string) error {
		rec := tortureRecord(id, 1, vc.Now())
		if _, err := v.Put("dr-house", rec); err != nil {
			return err
		}
		o.bodies[id] = append(o.bodies[id], rec.Body)
		return nil
	}
	correct := func(id string) error {
		n := len(o.bodies[id]) + 1
		rec := tortureRecord(id, n, vc.Now())
		if _, err := v.Correct("dr-house", rec); err != nil {
			return err
		}
		o.bodies[id] = append(o.bodies[id], rec.Body)
		return nil
	}

	for i := 0; i < 4; i++ {
		if err := put(fmt.Sprintf("rec-%d", i)); err != nil {
			return err
		}
	}
	if err := correct("rec-1"); err != nil {
		return err
	}
	if err := correct("rec-2"); err != nil {
		return err
	}
	if err := v.PlaceHold("arch-lee", "rec-3", "litigation"); err != nil {
		return err
	}
	o.holds["rec-3"] = true
	if err := v.PlaceHold("arch-lee", "rec-2", "investigation"); err != nil {
		return err
	}
	o.holds["rec-2"] = true
	o.releaseTried["rec-2"] = true
	if err := v.ReleaseHold("arch-lee", "rec-2"); err != nil {
		return err
	}
	delete(o.holds, "rec-2")
	// Age past the clinical retention period so shredding is permitted.
	vc.Advance(40 * 365 * 24 * time.Hour)
	// Warm every cache layer on the shred target: this read pulls rec-0's
	// plaintext DEK into the key cache and its ciphertext into the block
	// cache, so the shred below must invalidate both — and a crash injected
	// anywhere inside the shred exercises recovery with those caches gone.
	if _, _, err := v.Get("dr-house", "rec-0"); err != nil {
		return err
	}
	o.shredTried["rec-0"] = true
	if err := v.Shred("arch-lee", "rec-0"); err != nil {
		return err
	}
	o.shredded["rec-0"] = true
	// Read-after-shred probe: the caches warmed moments ago must not
	// resurrect the record. Anything but ErrShredded is a stale cache layer.
	if _, _, err := v.Get("dr-house", "rec-0"); !errors.Is(err, ErrShredded) {
		return fmt.Errorf("read-after-shred of rec-0: want ErrShredded, got %v", err)
	}
	if err := put("rec-4"); err != nil {
		return err
	}
	return v.Close()
}

// check audits a recovered vault against the oracle: every acked version
// readable with its exact body, acked shreds shredded, acked holds held,
// and full integrity verification clean.
func (o *oracle) check(v *Cluster) error {
	for id, bodies := range o.bodies {
		if o.shredded[id] {
			continue
		}
		for i, want := range bodies {
			rec, _, err := v.GetVersion("dr-house", id, uint64(i+1))
			if err != nil {
				// An in-flight shred's WAL intent may have survived the
				// crash; the record landing shredded is a valid outcome.
				if o.shredTried[id] && errors.Is(err, ErrShredded) {
					break
				}
				return fmt.Errorf("acked %s v%d unreadable after recovery: %w", id, i+1, err)
			}
			if rec.Body != want {
				return fmt.Errorf("acked %s v%d body mismatch after recovery", id, i+1)
			}
			// Read it again: the first read filled the block and DEK caches,
			// so this one is served from them — the cached path must return
			// the identical acked body, not a stale or cross-wired block.
			rec, _, err = v.GetVersion("dr-house", id, uint64(i+1))
			if err != nil {
				return fmt.Errorf("acked %s v%d unreadable on cached re-read: %w", id, i+1, err)
			}
			if rec.Body != want {
				return fmt.Errorf("acked %s v%d body mismatch on cached re-read", id, i+1)
			}
		}
	}
	for id := range o.shredded {
		if _, _, err := v.Get("dr-house", id); !errors.Is(err, ErrShredded) {
			return fmt.Errorf("acked shred of %s not honored after recovery: err=%v", id, err)
		}
	}
	held := make(map[string]bool)
	for _, h := range v.Retention().Holds() {
		held[h.Record] = true
	}
	for id := range o.holds {
		if !held[id] && !o.releaseTried[id] {
			return fmt.Errorf("acked legal hold on %s lost in recovery", id)
		}
	}
	if _, err := v.VerifyAll(nil, nil); err != nil {
		return fmt.Errorf("integrity verification failed after recovery: %w", err)
	}
	return nil
}

// scanForPlaintext greps a crash image for sentinel plaintext. Every byte
// on the medium is supposed to be ciphertext, HMAC tokens, or structural
// metadata — a sentinel hit means a record body leaked.
func scanForPlaintext(img *faultfs.Mem) error {
	needle := []byte(sentinelPrefix)
	for path, data := range img.Dump() {
		if bytes.Contains(data, needle) {
			return fmt.Errorf("plaintext sentinel found on medium in %s", path)
		}
	}
	return nil
}

// tortureIDs are the record IDs the scripted workload touches; the flight
// invariant maps their hashes back to IDs to compare against recovery.
var tortureIDs = []string{"rec-0", "rec-1", "rec-2", "rec-3", "rec-4"}

// flightTail is the decoded, persisted flight-recorder evidence found on a
// crash image: per workload record, how many successful mutations (put or
// correct) the tail claims were acknowledged, and whether it records an
// acknowledged shred.
type flightTail struct {
	okMutations map[string]int  // record ID -> acked put/correct events persisted
	shredOK     map[string]bool // record ID -> acked shred event persisted
}

// decodeFlightTail reads every flight directory the cluster layout can
// produce from the raw crash image — before recovery reopens the vault and
// starts a fresh segment — and audits the events themselves: the torn-tail
// rule must make them decodable, and no field may carry record plaintext.
func decodeFlightTail(img *faultfs.Mem, shards int) (flightTail, error) {
	ft := flightTail{okMutations: make(map[string]int), shredOK: make(map[string]bool)}
	hashToID := make(map[string]string, len(tortureIDs))
	for _, id := range tortureIDs {
		hashToID[obs.HashRecordID(id)] = id
	}
	dirs := []string{"vault/flight"}
	for i := 0; i < shards; i++ {
		dirs = append(dirs, fmt.Sprintf("vault/shard-%d/flight", i))
	}
	for _, d := range dirs {
		evs, err := obs.ReadFlightDir(img, d)
		if err != nil {
			return ft, fmt.Errorf("persisted flight tail in %s unreadable: %w", d, err)
		}
		for _, ev := range evs {
			for _, s := range []string{ev.Kind, ev.Record, ev.Trace, ev.Outcome, ev.Shard, ev.Detail} {
				if strings.Contains(s, sentinelPrefix) {
					return ft, fmt.Errorf("plaintext sentinel in persisted flight event in %s", d)
				}
			}
			if ev.Outcome != "ok" {
				continue
			}
			id, known := hashToID[ev.Record]
			if !known {
				continue
			}
			switch ev.Kind {
			case "put", "correct":
				ft.okMutations[id]++
			case "shred":
				ft.shredOK[id] = true
			}
		}
	}
	return ft, nil
}

// check compares the persisted flight evidence against the recovered vault.
// The flight sink never fsyncs, but it appends an acked-op event only after
// the op's own WAL fsync returned — so under the prefix crash model every
// persisted event describes an op whose WAL entry was already durable, and
// the tail must be a subset of what recovery rebuilds.
func (ft flightTail) check(v *Cluster) error {
	for id, n := range ft.okMutations {
		if ft.shredOK[id] {
			continue
		}
		got, err := v.VersionCount(id)
		if err != nil {
			// A shred whose own flight event did not persist may still have
			// been acked; the record landing shredded is consistent.
			if errors.Is(err, ErrShredded) {
				continue
			}
			return fmt.Errorf("flight tail claims %d acked mutations of %s but recovery lost it: %w", n, id, err)
		}
		if got < n {
			return fmt.Errorf("flight tail claims %d acked mutations of %s, recovered vault has %d versions", n, id, got)
		}
	}
	for id := range ft.shredOK {
		if _, _, err := v.Get("dr-house", id); !errors.Is(err, ErrShredded) {
			return fmt.Errorf("flight tail records acked shred of %s but recovered record is not shredded: err=%v", id, err)
		}
	}
	return nil
}

// recoverAndCheck mounts the crash image, recovers, audits against the
// oracle and against the persisted flight tail, then closes and recovers a
// second time to prove recovery is idempotent. Finally it scans the medium
// for plaintext.
func recoverAndCheck(img *faultfs.Mem, o *oracle, shards int) error {
	// Decode the flight tail from the raw image first: the recovery open
	// below starts a fresh segment in the same directories.
	ft, err := decodeFlightTail(img, shards)
	if err != nil {
		return err
	}
	for pass := 1; pass <= 2; pass++ {
		v, _, err := openTorture(img, shards)
		if err != nil {
			return fmt.Errorf("recovery pass %d failed: %w", pass, err)
		}
		if err := o.check(v); err != nil {
			v.Close()
			return fmt.Errorf("recovery pass %d: %w", pass, err)
		}
		if err := ft.check(v); err != nil {
			v.Close()
			return fmt.Errorf("recovery pass %d flight invariant: %w", pass, err)
		}
		if err := v.Close(); err != nil {
			return fmt.Errorf("recovery pass %d close: %w", pass, err)
		}
	}
	return scanForPlaintext(img)
}

// enumerate runs the workload once, fault-free, over a recording injector
// and returns the full op trace. It also sanity-checks the harness itself:
// the clean image must recover and pass the oracle.
func enumerate(shards int) ([]faultfs.Op, error) {
	var trace []faultfs.Op
	recorder := func(op faultfs.Op) *faultfs.Fault {
		if op.Index >= 0 {
			trace = append(trace, op)
		}
		return nil
	}
	mem := faultfs.NewMem()
	fsys := faultfs.NewFaulty(mem, recorder)
	v, vc, err := openTorture(fsys, shards)
	if err != nil {
		return nil, fmt.Errorf("torture: clean open failed: %w", err)
	}
	o := newOracle()
	if err := runWorkload(v, vc, o); err != nil {
		return nil, fmt.Errorf("torture: clean workload failed: %w", err)
	}
	if err := recoverAndCheck(mem.CrashImage(faultfs.KeepAll), o, shards); err != nil {
		return nil, fmt.Errorf("torture: clean run fails its own oracle: %w", err)
	}
	return trace, nil
}

// runScenario executes the workload with the given injector, takes a crash
// image under keep, and audits recovery. A workload error is expected (the
// injected fault surfacing); what matters is that everything acked before
// it survives. Panics anywhere in the scenario are converted to failures.
func runScenario(name string, point int, inject faultfs.Injector, keep faultfs.KeepPolicy, shards int) (fail *TortureFailure) {
	defer func() {
		if r := recover(); r != nil {
			fail = &TortureFailure{Scenario: name, Point: point, Detail: fmt.Sprintf("panic: %v", r)}
		}
	}()
	mem := faultfs.NewMem()
	fsys := faultfs.NewFaulty(mem, inject)
	o := newOracle()
	v, vc, err := openTorture(fsys, shards)
	if err == nil {
		// The workload aborts at the injected fault; acks recorded up to
		// that point are the durability obligation. The faulted vault is
		// abandoned un-Closed, exactly as a power cut would leave it.
		_ = runWorkload(v, vc, o)
	}
	if err := recoverAndCheck(mem.CrashImage(keep), o, shards); err != nil {
		return &TortureFailure{Scenario: name, Point: point, Detail: err.Error()}
	}
	return nil
}

// crashMatrix returns the scenarios exercised at one injection point.
func crashMatrix(op faultfs.Op) []struct {
	name   string
	inject faultfs.Injector
	keep   faultfs.KeepPolicy
} {
	i := op.Index
	m := []struct {
		name   string
		inject faultfs.Injector
		keep   faultfs.KeepPolicy
	}{
		{"crash-before/keep-none", faultfs.CrashBefore(i), faultfs.KeepNone},
		{"crash-after/keep-none", faultfs.CrashAfter(i), faultfs.KeepNone},
		{"crash-after/keep-all", faultfs.CrashAfter(i), faultfs.KeepAll},
		{"crash-after/keep-half", faultfs.CrashAfter(i), faultfs.KeepHalf},
	}
	if op.Kind == faultfs.OpWrite {
		m = append(m, struct {
			name   string
			inject faultfs.Injector
			keep   faultfs.KeepPolicy
		}{"torn-write/keep-all", faultfs.TornWriteAt(i), faultfs.KeepAll})
	}
	return m
}

// armedRot corrupts the next ciphertext read after arm() is called.
type armedRot struct {
	armed bool
	skip  int // reads to let through before corrupting
	seen  int
}

func (a *armedRot) inject(op faultfs.Op) *faultfs.Fault {
	if !a.armed || op.Kind != faultfs.OpRead || !strings.Contains(op.Path, "blocks") {
		return nil
	}
	if a.seen < a.skip {
		a.seen++
		return nil
	}
	a.armed = false
	return &faultfs.Fault{CorruptRead: true}
}

func (a *armedRot) arm(skip int) { a.armed, a.skip, a.seen = true, skip, 0 }

// runBitRot exercises read-path corruption detection: a clean workload is
// written and recovered, then each ciphertext read under GetVersion is
// flipped by one bit. The vault must return an error or the exact correct
// body — silently wrong data is the one unforgivable outcome. Returns the
// number of scenarios run and any failures.
func runBitRot(shards int) (int, []TortureFailure) {
	var fails []TortureFailure
	mem := faultfs.NewMem()
	o := newOracle()
	{
		v, vc, err := openTorture(mem, shards)
		if err != nil {
			return 0, []TortureFailure{{Scenario: "bit-rot/setup", Point: -1, Detail: err.Error()}}
		}
		if err := runWorkload(v, vc, o); err != nil {
			return 0, []TortureFailure{{Scenario: "bit-rot/setup", Point: -1, Detail: err.Error()}}
		}
	}
	rot := &armedRot{}
	fsys := faultfs.NewFaulty(mem, rot.inject)
	v, _, err := openTorture(fsys, shards)
	if err != nil {
		return 0, []TortureFailure{{Scenario: "bit-rot/reopen", Point: -1, Detail: err.Error()}}
	}
	defer v.Close()

	scenarios := 0
	for id, bodies := range o.bodies {
		if o.shredded[id] {
			continue
		}
		for i, want := range bodies {
			// skip=0 corrupts the block header read, skip=1 the payload.
			for skip := 0; skip <= 1; skip++ {
				rot.arm(skip)
				scenarios++
				rec, _, err := v.GetVersion("dr-house", id, uint64(i+1))
				if err == nil && rec.Body != want {
					fails = append(fails, TortureFailure{
						Scenario: fmt.Sprintf("bit-rot/read-%d", skip),
						Point:    -1,
						Detail:   fmt.Sprintf("%s v%d: corrupted read returned wrong data without error", id, i+1),
					})
				}
			}
		}
	}
	rot.armed = false
	// The medium itself was never corrupted — only reads in flight — so
	// with the injector disarmed the vault must verify clean end to end.
	if _, err := v.VerifyAll(nil, nil); err != nil {
		fails = append(fails, TortureFailure{Scenario: "bit-rot/aftermath", Point: -1,
			Detail: fmt.Sprintf("vault does not verify after transient read faults: %v", err)})
	}
	return scenarios, fails
}

// RunTorture executes the full torture schedule and reports.
func RunTorture(opts TortureOpts) (TortureReport, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	stride := opts.Stride
	if stride <= 0 {
		stride = 1
		if opts.Quick {
			stride = 5
		}
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}

	var rep TortureReport
	trace, err := enumerate(shards)
	if err != nil {
		return rep, err
	}
	rep.InjectionPoints = len(trace)
	logf("enumerated %d injection points (stride %d)", len(trace), stride)

	syncs, writes := 0, 0
	for idx, op := range trace {
		if op.Kind == faultfs.OpSync {
			syncs++
		}
		if op.Kind == faultfs.OpWrite || op.Kind == faultfs.OpWriteFile {
			writes++
		}
		if idx%stride != 0 {
			continue
		}
		for _, sc := range crashMatrix(op) {
			rep.CrashScenarios++
			if f := runScenario(sc.name, op.Index, sc.inject, sc.keep, shards); f != nil {
				rep.Failures = append(rep.Failures, *f)
				logf("FAIL %s", f)
			}
		}
	}
	logf("crash matrix done: %d scenarios", rep.CrashScenarios)

	// Failed fsync at every sync point: the WAL wedges, blockstore syncs
	// surface the error to the caller — either way nothing acked may be
	// lost, and nothing may be acked after the lie.
	for n := 0; n < syncs; n += stride {
		rep.FaultScenarios++
		if f := runScenario("eio-sync/keep-all", n, faultfs.FailNthSync(n, faultfs.ErrInjected), faultfs.KeepAll, shards); f != nil {
			rep.Failures = append(rep.Failures, *f)
			logf("FAIL %s", f)
		}
	}
	// ENOSPC at every write point.
	seen := 0
	for _, op := range trace {
		if op.Kind != faultfs.OpWrite && op.Kind != faultfs.OpWriteFile {
			continue
		}
		if seen%stride == 0 {
			rep.FaultScenarios++
			if f := runScenario("enospc/keep-all", op.Index, faultfs.FailAt(op.Index, faultfs.ErrNoSpace), faultfs.KeepAll, shards); f != nil {
				rep.Failures = append(rep.Failures, *f)
				logf("FAIL %s", f)
			}
		}
		seen++
	}
	logf("fault matrix done: %d scenarios (%d syncs, %d writes in trace)", rep.FaultScenarios, syncs, writes)

	n, fails := runBitRot(shards)
	rep.FaultScenarios += n
	rep.Failures = append(rep.Failures, fails...)
	logf("bit-rot done: %d scenarios", n)

	return rep, nil
}
