package core

import (
	"context"
	"errors"
	"fmt"

	"medvault/internal/authz"
	"medvault/internal/blockstore"
	"medvault/internal/ehr"
	"medvault/internal/obs"
	"medvault/internal/stores"
)

// Adapter presents a Vault through the stores.Store interface so the
// experiment harness can compare it head-to-head with the Section-4
// baselines. It runs every operation as a single fully privileged principal
// ("bench-admin") — the baselines have no access control, so giving the
// vault an always-authorized actor keeps the comparison about the storage
// models, with the vault still paying its own authorization and audit costs
// on every call.
type Adapter struct {
	v     API
	actor string
}

var (
	_ stores.Store      = (*Adapter)(nil)
	_ stores.Tamperable = (*Adapter)(nil)
)

// NewAdapter wraps v — a single Vault or a Cluster — registering a fully
// privileged bench principal.
func NewAdapter(v API) (*Adapter, error) {
	const actor = "bench-admin"
	a := v.Authz()
	a.DefineRole(authz.NewRole("bench-all-access", []authz.Action{
		authz.ActRead, authz.ActWrite, authz.ActCorrect, authz.ActSearch,
		authz.ActShred, authz.ActMigrate, authz.ActBackup, authz.ActAudit,
	}))
	if err := a.AddPrincipal(actor, "bench-all-access"); err != nil {
		return nil, err
	}
	return &Adapter{v: v, actor: actor}, nil
}

// Name implements stores.Store.
func (a *Adapter) Name() string { return "medvault" }

// trace wraps one bench operation in a trace on the process tracer, so
// experiment and scaling runs populate the same per-span histograms and
// /debug/traces ring the HTTP server does. The trace machinery is part of
// the measured pipeline by design: medvaultd pays it on every request, so
// the bench must too.
func trace(op string, fn func(ctx context.Context) error) error {
	ctx, tr := obs.DefaultTracer.Start(context.Background(), op, "")
	err := fn(ctx)
	obs.DefaultTracer.Finish(tr, err)
	return err
}

// Put implements stores.Store.
func (a *Adapter) Put(rec ehr.Record) error {
	return mapErr(trace("put", func(ctx context.Context) error {
		_, err := a.v.PutCtx(ctx, a.actor, rec)
		return err
	}))
}

// Get implements stores.Store.
func (a *Adapter) Get(id string) (ehr.Record, error) {
	var rec ehr.Record
	err := trace("get", func(ctx context.Context) error {
		var err error
		rec, _, err = a.v.GetCtx(ctx, a.actor, id)
		return err
	})
	return rec, mapErr(err)
}

// Correct implements stores.Store.
func (a *Adapter) Correct(rec ehr.Record) error {
	return mapErr(trace("correct", func(ctx context.Context) error {
		_, err := a.v.CorrectCtx(ctx, a.actor, rec)
		return err
	}))
}

// Search implements stores.Store.
func (a *Adapter) Search(keyword string) ([]string, error) {
	var out []string
	err := trace("search", func(ctx context.Context) error {
		var err error
		out, err = a.v.SearchCtx(ctx, a.actor, keyword)
		return err
	})
	return out, err
}

// Dispose implements stores.Store.
func (a *Adapter) Dispose(id string) error {
	return mapErr(trace("shred", func(ctx context.Context) error {
		return a.v.ShredCtx(ctx, a.actor, id)
	}))
}

// Verify implements stores.Store.
func (a *Adapter) Verify() error {
	if _, err := a.v.VerifyAll(nil, nil); err != nil {
		return fmt.Errorf("%w: %v", stores.ErrTampered, err)
	}
	return nil
}

// Len implements stores.Store.
func (a *Adapter) Len() int { return a.v.Len() }

// StorageBytes implements stores.Store.
func (a *Adapter) StorageBytes() int64 { return a.v.StorageBytes() }

// shardVaults lists the underlying vaults: the vault itself when wrapping a
// bare Vault, the per-shard vaults in shard order for a Cluster.
func (a *Adapter) shardVaults() []*Vault {
	switch t := a.v.(type) {
	case *Vault:
		return []*Vault{t}
	case *Cluster:
		out := make([]*Vault, t.NumShards())
		for i := range out {
			out[i] = t.Shard(i)
		}
		return out
	}
	return nil
}

// vaultFor resolves the vault that owns id — the record's shard for a
// Cluster, the vault itself otherwise.
func (a *Adapter) vaultFor(id string) (*Vault, error) {
	switch t := a.v.(type) {
	case *Vault:
		return t, nil
	case *Cluster:
		return t.shardFor(id), nil
	}
	return nil, fmt.Errorf("core: adapter wraps unsupported API implementation %T", a.v)
}

// RawBytes implements stores.Store: the ciphertext log plus the SSE index's
// stored form — the at-rest attack surface. For a cluster it is the
// concatenation over shards in shard order.
func (a *Adapter) RawBytes() []byte {
	var out []byte
	for _, v := range a.shardVaults() {
		mem, ok := v.blocks.(*blockstore.Memory)
		if !ok {
			raw, err := v.blocks.(*blockstore.File).ReadRaw()
			if err != nil {
				return nil
			}
			out = append(out, raw...)
		} else {
			for i := 0; i < mem.SegmentCount(); i++ {
				out = append(out, mem.RawSegment(i)...)
			}
		}
		if snap, err := v.idx.Snapshot(); err == nil {
			out = append(out, snap...)
		}
	}
	return out
}

// TamperRecord implements stores.Tamperable on memory-backed vaults: a
// format-aware insider rewrites the latest version's ciphertext in place
// with a valid CRC. On a cluster the write lands on the record's own shard.
func (a *Adapter) TamperRecord(id string, mutate func([]byte) []byte) error {
	v, err := a.vaultFor(id)
	if err != nil {
		return err
	}
	mem, ok := v.blocks.(*blockstore.Memory)
	if !ok {
		return fmt.Errorf("core: TamperRecord requires a memory-backed vault")
	}
	mu := v.stripes.forRecord(id)
	mu.RLock()
	st, err := v.stateFor(id)
	var ref blockstore.Ref
	if err == nil {
		ref = st.versions[len(st.versions)-1].Ref
	}
	mu.RUnlock()
	if err != nil {
		return mapErr(err)
	}
	return mem.CorruptFrame(ref, mutate)
}

// RollbackMetadata models the insider who edits the vault's metadata to
// hide the latest correction (truncating the version list). VerifyAll must
// catch it via the commitment-log size check.
func (a *Adapter) RollbackMetadata(id string) error {
	v, err := a.vaultFor(id)
	if err != nil {
		return err
	}
	mu := v.stripes.forRecord(id)
	mu.Lock()
	defer mu.Unlock()
	st, ok := v.lookup(id)
	if !ok || len(st.versions) < 2 {
		return fmt.Errorf("%w: %s has no correction to hide", stores.ErrNotFound, id)
	}
	st.versions = st.versions[:len(st.versions)-1]
	return nil
}

// Vault returns the wrapped vault for probes needing the full API. It is nil
// when the adapter wraps a multi-shard cluster — such probes are inherently
// single-vault.
func (a *Adapter) Vault() *Vault {
	if vs := a.shardVaults(); len(vs) == 1 {
		return vs[0]
	}
	return nil
}

// mapErr translates core sentinels to the stores package's vocabulary where
// a direct counterpart exists, so the harness can switch on one error set.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrExists):
		return fmt.Errorf("%w: %v", stores.ErrExists, err)
	case errors.Is(err, ErrNotFound):
		return fmt.Errorf("%w: %v", stores.ErrNotFound, err)
	case errors.Is(err, ErrTampered):
		return fmt.Errorf("%w: %v", stores.ErrTampered, err)
	default:
		return err
	}
}
