package core

import (
	"bytes"
	"testing"
	"time"

	"medvault/internal/ehr"
)

// FuzzDecodeBundle feeds arbitrary bytes to the export-bundle decoder — the
// parser that sits on the trust boundary between vaults during migration
// and restore. It must never panic, and every accepted bundle must
// re-encode to the identical bytes (the canonical-encoding property that
// cross-system content signatures depend on).
func FuzzDecodeBundle(f *testing.F) {
	rec := ehr.Record{
		ID:        "rec-fuzz",
		Patient:   "Pat Fuzz",
		MRN:       "mrn-1",
		Category:  ehr.CategoryClinical,
		Author:    "dr-house",
		CreatedAt: time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC),
		Title:     "note",
		Body:      "fuzz corpus body",
		Codes:     []string{"I10"},
	}
	seed := ExportBundle{
		ID:       rec.ID,
		Category: rec.Category,
		Versions: []ExportedVersion{{
			Record: rec,
			Version: Version{
				Number:    1,
				Author:    "dr-house",
				Timestamp: time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC),
			},
		}},
	}
	f.Add(EncodeBundle(seed))
	f.Add(EncodeBundle(ExportBundle{ID: "empty", Category: ehr.CategoryLab}))
	f.Add([]byte{})
	f.Add([]byte("MVXB"))
	f.Add(bytes.Repeat([]byte{0xFF}, 80))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBundle(data)
		if err != nil {
			return
		}
		re := EncodeBundle(b)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}
