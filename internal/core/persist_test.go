package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/ehr"
	"medvault/internal/merkle"
	"medvault/internal/vcrypto"
)

// openDurable opens a file-backed vault in dir with standard staff.
func openDurable(t *testing.T, dir string, master vcrypto.Key, vc *clock.Virtual) *Vault {
	t.Helper()
	v, err := Open(Config{Name: "durable", Master: master, Clock: vc, Dir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	a := v.Authz()
	for _, r := range authz.StandardRoles() {
		a.DefineRole(r)
	}
	if err := a.AddPrincipal("dr-house", "physician"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPrincipal("arch-lee", "archivist"); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDurableReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	master, _ := vcrypto.NewKey()
	vc := clock.NewVirtual(testEpoch)

	v := openDurable(t, dir, master, vc)
	g := ehr.NewGenerator(30, testEpoch)
	var ids []string
	var bodies []string
	for i := 0; i < 12; i++ {
		r := g.Next()
		if r.Category == ehr.CategoryBilling || r.Category == ehr.CategoryOccupational {
			continue
		}
		if _, err := v.Put("dr-house", r); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, r.ID)
		bodies = append(bodies, r.Body)
	}
	headBefore := v.Head()
	if err := v.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := openDurable(t, dir, master, vc)
	defer re.Close()
	if re.Len() != len(ids) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(ids))
	}
	for i, id := range ids {
		rec, _, err := re.Get("dr-house", id)
		if err != nil {
			t.Fatalf("Get(%s) after reopen: %v", id, err)
		}
		if rec.Body != bodies[i] {
			t.Errorf("content of %s changed across reopen", id)
		}
	}
	// The commitment log must be the SAME log, extending the old head.
	if _, err := re.VerifyAll([]merkle.SignedTreeHead{headBefore}, nil); err != nil {
		t.Fatalf("VerifyAll after reopen: %v", err)
	}
	// Search still works (index restored from snapshot).
	hits, err := re.Search("dr-house", ehr.CommonCondition())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Error("index lost across reopen")
	}
	// And new writes continue cleanly.
	r := g.Next()
	for r.Category != ehr.CategoryClinical {
		r = g.Next()
	}
	if _, err := re.Put("dr-house", r); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}

func TestDurableCrashRecoveryViaWAL(t *testing.T) {
	dir := t.TempDir()
	master, _ := vcrypto.NewKey()
	vc := clock.NewVirtual(testEpoch)

	v := openDurable(t, dir, master, vc)
	g := ehr.NewGenerator(31, testEpoch)
	var rec ehr.Record
	for rec = g.Next(); rec.Category != ehr.CategoryClinical; rec = g.Next() {
	}
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	corr := g.Correction(rec)
	if _, err := v.Correct("dr-house", corr); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Close, no snapshot. Recovery must come from the
	// WAL alone.
	v.blocks.Sync()

	re := openDurable(t, dir, master, vc)
	defer re.Close()
	got, ver, err := re.Get("dr-house", rec.ID)
	if err != nil {
		t.Fatalf("Get after crash: %v", err)
	}
	if ver.Number != 2 || !strings.Contains(got.Body, "AMENDMENT") {
		t.Errorf("correction lost in crash recovery: v%d", ver.Number)
	}
	hist, err := re.History("dr-house", rec.ID)
	if err != nil || len(hist) != 2 {
		t.Fatalf("history after crash: %d, %v", len(hist), err)
	}
	if _, err := re.VerifyAll(nil, nil); err != nil {
		t.Errorf("VerifyAll after crash recovery: %v", err)
	}
}

func TestDurableShredSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	master, _ := vcrypto.NewKey()
	vc := clock.NewVirtual(testEpoch)

	v := openDurable(t, dir, master, vc)
	rec := ehr.NewGenerator(32, testEpoch).Next()
	rec.CreatedAt = testEpoch
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	vc.Advance(40 * 365 * 24 * time.Hour)
	if err := v.Shred("arch-lee", rec.ID); err != nil {
		t.Fatalf("Shred: %v", err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, master, vc)
	defer re.Close()
	if _, _, err := re.Get("dr-house", rec.ID); !errors.Is(err, ErrShredded) {
		t.Errorf("shred lost across reopen: %v", err)
	}
	if _, err := re.Put("dr-house", rec); !errors.Is(err, ErrShredded) {
		t.Errorf("shredded ID reusable after reopen: %v", err)
	}
	if _, err := re.VerifyAll(nil, nil); err != nil {
		t.Errorf("VerifyAll after reopen with shredded record: %v", err)
	}
}

func TestDurableCrashAfterShredWALReplay(t *testing.T) {
	dir := t.TempDir()
	master, _ := vcrypto.NewKey()
	vc := clock.NewVirtual(testEpoch)
	v := openDurable(t, dir, master, vc)
	rec := ehr.NewGenerator(33, testEpoch).Next()
	rec.CreatedAt = testEpoch
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	vc.Advance(40 * 365 * 24 * time.Hour)
	if err := v.Shred("arch-lee", rec.ID); err != nil {
		t.Fatal(err)
	}
	// Crash without Close: the shred lives only in the WAL.
	re := openDurable(t, dir, master, vc)
	defer re.Close()
	if _, _, err := re.Get("dr-house", rec.ID); !errors.Is(err, ErrShredded) {
		t.Errorf("WAL shred replay failed: %v", err)
	}
}

func TestDurableLegalHoldsSurvive(t *testing.T) {
	dir := t.TempDir()
	master, vc := mustKey(t), mustClock()
	v := openDurable(t, dir, master, vc)
	rec := ehr.NewGenerator(36, testEpoch).Next()
	rec.CreatedAt = testEpoch
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	vc.Advance(40 * 365 * 24 * time.Hour)
	if err := v.PlaceHold("arch-lee", rec.ID, "grand jury subpoena 26-118"); err != nil {
		t.Fatalf("PlaceHold: %v", err)
	}
	placedAt := v.Retention().Holds()[0].Placed

	// Crash (no Close): the hold lives only in the WAL.
	re := openDurable(t, dir, master, vc)
	holds := re.Retention().Holds()
	if len(holds) != 1 || holds[0].Reason != "grand jury subpoena 26-118" {
		t.Fatalf("hold lost in WAL replay: %v", holds)
	}
	if !holds[0].Placed.Equal(placedAt) {
		t.Error("hold timestamp drifted across replay")
	}
	if err := re.Shred("arch-lee", rec.ID); err == nil {
		t.Fatal("shred under replayed hold accepted")
	}
	// Clean close → snapshot path.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openDurable(t, dir, master, vc)
	defer re2.Close()
	if len(re2.Retention().Holds()) != 1 {
		t.Fatal("hold lost in snapshot restore")
	}
	// Release is durable too.
	if err := re2.ReleaseHold("arch-lee", rec.ID); err != nil {
		t.Fatal(err)
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}
	re3 := openDurable(t, dir, master, vc)
	defer re3.Close()
	if len(re3.Retention().Holds()) != 0 {
		t.Fatal("released hold resurrected")
	}
	if err := re3.Shred("arch-lee", rec.ID); err != nil {
		t.Fatalf("shred after durable release: %v", err)
	}
	// Unauthorized hold management is refused.
	if err := re3.PlaceHold("dr-house", rec.ID, "x"); !errors.Is(err, ErrShredded) && !errors.Is(err, ErrDenied) {
		t.Errorf("hold by physician on shredded record: %v", err)
	}
}

func TestDurableWrongMasterFailsClosed(t *testing.T) {
	dir := t.TempDir()
	master, _ := vcrypto.NewKey()
	vc := clock.NewVirtual(testEpoch)
	v := openDurable(t, dir, master, vc)
	rec := clinicalRecord(t, 34)
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	wrong, _ := vcrypto.NewKey()
	if _, err := Open(Config{Name: "durable", Master: wrong, Clock: vc, Dir: dir}); err == nil {
		t.Error("vault opened with the wrong master key")
	}
}

func TestDurableSnapshotIsAtomic(t *testing.T) {
	dir := t.TempDir()
	master, _ := vcrypto.NewKey()
	vc := clock.NewVirtual(testEpoch)
	v := openDurable(t, dir, master, vc)
	rec := clinicalRecord(t, 35)
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	// No stray temp file, snapshot present.
	if _, err := os.Stat(filepath.Join(dir, "meta.snap")); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.snap.tmp")); !os.IsNotExist(err) {
		t.Error("stray snapshot temp file")
	}
}
