package core

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Concurrency architecture. The vault used to serialize every operation
// behind one RWMutex; it now layers four lock kinds so operations on
// different records commute:
//
//	gate     an operation gate: every public operation holds it shared for
//	         its whole duration; Close, VerifyAll, and SanitizeMedia hold it
//	         exclusively. Closing therefore *waits* for in-flight operations
//	         instead of racing them (the old checkOpen TOCTOU), and
//	         whole-vault sweeps see a frozen vault.
//	stripe   per-record RWMutexes, record ID hashed onto one of numStripes
//	         stripes. Mutations (Put/Correct/Shred/holds/Import) hold the
//	         record's stripe exclusively; reads (Get/GetVersion/History/
//	         Export/proofs) hold it shared. Operations on records in
//	         different stripes run fully in parallel.
//	commitMu the commit sequencer: held only across {WAL enqueue, Merkle
//	         append} so the WAL's entry order always equals the commitment
//	         log's leaf order — recovery replays leaves in WAL order, so a
//	         divergence would break every inclusion proof after a restart.
//	         The fsync wait happens after release; sealing, blockstore
//	         appends, and index updates are outside it entirely.
//	leaves   component locks inside blockstore/audit/merkle/index/keystore/
//	         retention/authz/provenance, plus regMu guarding the records
//	         map. All are acquired last and never held across a call into
//	         another layer.
//
// Lock order: gate → stripe → commitMu → leaf locks. Nothing acquires a
// stripe while holding commitMu or a leaf lock, nothing acquires two stripes
// at once, and regMu is never held across any other acquisition.
const numStripes = 64

// opGate admits operations while the vault is open and lets exclusive
// passes (Close, VerifyAll, SanitizeMedia) drain in-flight operations
// before proceeding.
type opGate struct {
	mu     sync.RWMutex
	closed bool
	// closedFlag mirrors closed for lock-free readers (Health must answer
	// while Close is draining, when the gate's lock is unavailable).
	closedFlag atomic.Bool
}

// begin admits one operation; the caller must pair it with end. It fails
// with ErrClosed once close has run — and because the shared lock is held
// for the operation's whole duration, an admitted operation can never
// observe a closing vault's half-released resources.
func (g *opGate) begin() error {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return ErrClosed
	}
	return nil
}

// end releases an operation admitted by begin.
func (g *opGate) end() { g.mu.RUnlock() }

// beginExclusive admits a whole-vault pass, waiting for every in-flight
// operation to finish and blocking new ones until endExclusive.
func (g *opGate) beginExclusive() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrClosed
	}
	return nil
}

// endExclusive releases an exclusive pass.
func (g *opGate) endExclusive() { g.mu.Unlock() }

// shut marks the gate closed, first draining in-flight operations. It
// returns false if the gate was already closed. The caller holds the gate
// exclusively when shut returns true and must release it with endExclusive.
func (g *opGate) shut() bool {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return false
	}
	g.closed = true
	g.closedFlag.Store(true)
	return true
}

// isShut reports whether shut has run, without touching the gate's lock.
func (g *opGate) isShut() bool { return g.closedFlag.Load() }

// lockStripes is the per-record lock table. Striping bounds memory at a
// fixed table instead of a lock per record; two records colliding on a
// stripe serialize against each other, which is correctness-neutral.
type lockStripes struct {
	stripes [numStripes]sync.RWMutex
}

// stripeIndex maps a record ID onto its stripe.
func stripeIndex(id string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return h.Sum32() % numStripes
}

// forRecord returns the stripe guarding the record ID.
func (s *lockStripes) forRecord(id string) *sync.RWMutex {
	return &s.stripes[stripeIndex(id)]
}
