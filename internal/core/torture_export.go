package core

// Exported handles on the crash-recovery torture harness. The failover
// torture in internal/repl reuses the exact scripted workload, acked-state
// oracle, and plaintext scan that torture.go runs against a single disk —
// but points them at a promoted replica instead of a recovered crash image.
// Exporting thin wrappers (rather than duplicating the script) keeps the two
// harnesses answering the same question: "is everything the vault
// acknowledged still there?"

import (
	"medvault/internal/clock"
	"medvault/internal/faultfs"
)

// TortureOracle records acknowledged operations during a torture workload so
// recovery — or a promoted follower — can be audited against them.
type TortureOracle struct{ o *oracle }

// NewTortureOracle returns an empty oracle.
func NewTortureOracle() *TortureOracle { return &TortureOracle{o: newOracle()} }

// OpenTortureVault opens (or reopens) the standard torture vault over fsys:
// fixed master seed, virtual clock at the torture epoch, standard staff.
func OpenTortureVault(fsys faultfs.FS, shards int) (*Cluster, *clock.Virtual, error) {
	return openTorture(fsys, shards)
}

// RunTortureWorkload executes the scripted torture workload against v,
// recording every acknowledgment in o. It returns the first error (the
// injected fault surfacing); acks recorded before it are owed durability.
func RunTortureWorkload(v *Cluster, vc *clock.Virtual, o *TortureOracle) error {
	return runWorkload(v, vc, o.o)
}

// Check audits a recovered or promoted vault against the oracle: every acked
// version readable with its exact body, acked shreds honored, acked holds in
// force, and VerifyAll clean.
func (t *TortureOracle) Check(v *Cluster) error { return t.o.check(v) }

// ScanForPlaintext greps a disk image for the workload's sentinel plaintext;
// any hit means a record body leaked to the medium.
func ScanForPlaintext(img *faultfs.Mem) error { return scanForPlaintext(img) }
