package core

import (
	"errors"
	"testing"
	"time"

	"medvault/internal/audit"
	"medvault/internal/ehr"
)

func TestAccountingOfDisclosures(t *testing.T) {
	v, _ := newVault(t)
	mk := func(id string) ehr.Record {
		return ehr.Record{
			ID: id, MRN: "mrn-777", Patient: "Keiko Tanaka",
			Category: ehr.CategoryClinical, Author: "dr-house",
			CreatedAt: testEpoch, Title: "note", Body: "asthma follow-up",
		}
	}
	recA, recB := mk("mrn-777/enc-0"), mk("mrn-777/enc-1")
	other := ehr.Record{
		ID: "mrn-888/enc-0", MRN: "mrn-888", Patient: "Omar Haddad",
		Category: ehr.CategoryClinical, Author: "dr-house",
		CreatedAt: testEpoch, Title: "note", Body: "unrelated",
	}
	for _, r := range []ehr.Record{recA, recB, other} {
		if _, err := v.Put("dr-house", r); err != nil {
			t.Fatal(err)
		}
	}
	// Accesses: two reads by the physician, one read by the nurse, one
	// denied attempt by the clerk, one break-glass read by the clerk.
	v.Get("dr-house", recA.ID)
	v.Get("dr-house", recB.ID)
	v.Get("nurse-joy", recA.ID)
	v.Get("clerk-bob", recA.ID) // denied
	if err := v.BreakGlass("clerk-bob", "after-hours emergency", time.Hour); err != nil {
		t.Fatal(err)
	}
	v.Get("clerk-bob", recA.ID) // break-glass read
	v.Get("dr-house", other.ID) // different patient: must not appear

	disclosures, err := v.AccountingOfDisclosures("officer-kim", "mrn-777")
	if err != nil {
		t.Fatal(err)
	}
	// 2 creates + 2 physician reads + 1 nurse read + 1 denied + 1 BG read.
	if len(disclosures) != 7 {
		t.Fatalf("got %d disclosures, want 7: %+v", len(disclosures), disclosures)
	}
	var denied, breakGlass, reads int
	for _, d := range disclosures {
		if d.Record != recA.ID && d.Record != recB.ID {
			t.Errorf("foreign record %s in accounting", d.Record)
		}
		if d.Outcome == audit.OutcomeDenied {
			denied++
		}
		if d.BreakGlass {
			breakGlass++
		}
		if d.Action == audit.ActionRead {
			reads++
		}
	}
	if denied != 1 {
		t.Errorf("denied = %d, want 1", denied)
	}
	if breakGlass != 1 {
		t.Errorf("break-glass flagged = %d, want 1", breakGlass)
	}
	if reads != 5 {
		t.Errorf("reads = %d, want 5", reads)
	}
	// Chronological order.
	for i := 1; i < len(disclosures); i++ {
		if disclosures[i].Timestamp.Before(disclosures[i-1].Timestamp) {
			t.Error("disclosures out of order")
		}
	}

	// Authorization: physicians cannot pull accountings.
	if _, err := v.AccountingOfDisclosures("dr-house", "mrn-777"); !errors.Is(err, ErrDenied) {
		t.Errorf("physician accounting: %v", err)
	}
	// Unknown MRN.
	if _, err := v.AccountingOfDisclosures("officer-kim", "mrn-000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown MRN: %v", err)
	}
}

func TestPatientRecords(t *testing.T) {
	v, _ := newVault(t)
	clin := ehr.Record{
		ID: "mrn-9/enc-0", MRN: "mrn-9", Patient: "P", Category: ehr.CategoryClinical,
		Author: "dr-house", CreatedAt: testEpoch, Title: "t", Body: "b",
	}
	bill := ehr.Record{
		ID: "mrn-9/bill-0", MRN: "mrn-9", Patient: "P", Category: ehr.CategoryBilling,
		Author: "clerk-bob", CreatedAt: testEpoch, Title: "t", Body: "b",
	}
	if _, err := v.Put("dr-house", clin); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Put("clerk-bob", bill); err != nil {
		t.Fatal(err)
	}
	// The physician sees the clinical record only; the clerk the billing one.
	got, err := v.PatientRecords("dr-house", "mrn-9")
	if err != nil || len(got) != 1 || got[0] != clin.ID {
		t.Errorf("physician view = %v, %v", got, err)
	}
	got, err = v.PatientRecords("clerk-bob", "mrn-9")
	if err != nil || len(got) != 1 || got[0] != bill.ID {
		t.Errorf("clerk view = %v, %v", got, err)
	}
	// Shredded records drop out of the patient view (but stay in the
	// accounting, which TestAccountingOfDisclosures covers).
	if got, _ := v.PatientRecords("dr-house", "mrn-none"); len(got) != 0 {
		t.Errorf("unknown MRN view = %v", got)
	}
}

func TestDisclosuresSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	master, vc := mustKey(t), mustClock()
	v := openDurable(t, dir, master, vc)
	rec := ehr.Record{
		ID: "mrn-5/enc-0", MRN: "mrn-5", Patient: "P", Category: ehr.CategoryClinical,
		Author: "dr-house", CreatedAt: testEpoch, Title: "t", Body: "b",
	}
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	v.Get("dr-house", rec.ID)
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, master, vc)
	defer re.Close()
	// MRN association recovered from the snapshot.
	if err := re.Authz().AddPrincipal("officer-kim", "compliance-officer"); err != nil {
		t.Fatal(err)
	}
	disclosures, err := re.AccountingOfDisclosures("officer-kim", "mrn-5")
	if err != nil {
		t.Fatal(err)
	}
	if len(disclosures) != 2 { // create + read
		t.Errorf("disclosures after reopen = %d, want 2", len(disclosures))
	}
}
