package core

import "testing"

// TestTortureFull runs the complete crash-recovery torture schedule: every
// mutating filesystem op the scripted workload performs gets a simulated
// power cut (four keep policies plus torn writes), a failed fsync, and
// ENOSPC, and every ciphertext read gets bit rot. The acceptance bar from
// the issue: at least 50 distinct injection points, zero violated
// invariants.
func TestTortureFull(t *testing.T) {
	rep, err := RunTorture(TortureOpts{Logf: t.Logf})
	if err != nil {
		t.Fatalf("RunTorture: %v", err)
	}
	if rep.InjectionPoints < 50 {
		t.Errorf("enumerated %d injection points, want >= 50", rep.InjectionPoints)
	}
	if rep.CrashScenarios < 200 {
		t.Errorf("ran %d crash scenarios, want >= 200", rep.CrashScenarios)
	}
	if rep.FaultScenarios < 30 {
		t.Errorf("ran %d fault scenarios, want >= 30", rep.FaultScenarios)
	}
	for _, f := range rep.Failures {
		t.Errorf("invariant violated: %s", f)
	}
}

// TestTortureQuick exercises the subsampled CI-smoke path.
func TestTortureQuick(t *testing.T) {
	rep, err := RunTorture(TortureOpts{Quick: true})
	if err != nil {
		t.Fatalf("RunTorture: %v", err)
	}
	if !rep.Passed() {
		for _, f := range rep.Failures {
			t.Errorf("invariant violated: %s", f)
		}
	}
	if rep.CrashScenarios >= 200 {
		t.Errorf("quick mode ran %d crash scenarios; expected subsampling", rep.CrashScenarios)
	}
}
