package core

import (
	"crypto/sha256"
	"errors"
	"sync"
	"testing"
	"time"

	"medvault/internal/blockstore"
	"medvault/internal/clock"
	"medvault/internal/ehr"
	"medvault/internal/vcrypto"
)

// clinicalRecords draws n distinct clinical records from one generator (a
// single stream guarantees unique IDs; independent seeds do not).
func clinicalRecords(t *testing.T, seed int64, n int) []ehr.Record {
	t.Helper()
	g := ehr.NewGenerator(seed, testEpoch)
	recs := make([]ehr.Record, 0, n)
	seen := map[string]bool{}
	for len(recs) < n {
		r := g.Next()
		if r.Category != ehr.CategoryClinical || seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		recs = append(recs, r)
	}
	return recs
}

// TestBlockCacheHashGate pins the block cache's safety property: a hit is
// served only when the entry's fill-time hash equals the hash the caller's
// version metadata demands. An entry that can't match degrades to a miss and
// is dropped, never served.
func TestBlockCacheHashGate(t *testing.T) {
	c := newBlockCache(1<<20, "")
	ref := blockstore.Ref{Segment: 1, Offset: 64}
	data := []byte("ciphertext-bytes")
	h := sha256.Sum256(data)
	c.put(ref, h, data)

	if got, ok := c.get(ref, h); !ok || string(got) != string(data) {
		t.Fatalf("matching-hash get: ok=%v data=%q", ok, got)
	}
	other := sha256.Sum256([]byte("a different version's ciphertext"))
	if _, ok := c.get(ref, other); ok {
		t.Fatal("cache served a block whose hash does not match the caller's version metadata")
	}
	// The mismatched entry was dropped, so even the original hash misses now.
	if _, ok := c.get(ref, h); ok {
		t.Fatal("mismatched entry was not dropped")
	}
}

// TestBlockCacheBounds pins the sizing rules: total bytes stay under the cap
// via LRU eviction, and a single block larger than the whole cache is skipped
// rather than flushing everything else.
func TestBlockCacheBounds(t *testing.T) {
	c := newBlockCache(100, "")
	block := func(i int, n int) (blockstore.Ref, [32]byte, []byte) {
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(i)
		}
		return blockstore.Ref{Segment: uint32(i)}, sha256.Sum256(data), data
	}

	r1, h1, d1 := block(1, 40)
	r2, h2, d2 := block(2, 40)
	r3, h3, d3 := block(3, 40)
	c.put(r1, h1, d1)
	c.put(r2, h2, d2)
	c.put(r3, h3, d3) // 120 bytes > cap: r1 (LRU) must go
	if c.bytes > 100 {
		t.Fatalf("cache holds %d bytes, cap 100", c.bytes)
	}
	if _, ok := c.get(r1, h1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, pr := range []struct {
		ref  blockstore.Ref
		hash [32]byte
	}{{r2, h2}, {r3, h3}} {
		if _, ok := c.get(pr.ref, pr.hash); !ok {
			t.Fatalf("recent entry %v evicted", pr.ref)
		}
	}

	rBig, hBig, dBig := block(9, 200)
	c.put(rBig, hBig, dBig)
	if _, ok := c.get(rBig, hBig); ok {
		t.Fatal("oversized block was cached")
	}
	if _, ok := c.get(r3, h3); !ok {
		t.Fatal("oversized put flushed existing entries")
	}
}

// TestNegativeCachePutInvalidation is the staleness regression for the
// negative-lookup layer: probing an unknown ID caches "missing"; a Put of
// that exact ID must make the very next read succeed. A stale negative entry
// here would deny a record that exists.
func TestNegativeCachePutInvalidation(t *testing.T) {
	v, _ := newVault(t)
	rec := clinicalRecord(t, 77)

	for i := 0; i < 2; i++ { // second probe is the cached-negative path
		if _, _, err := v.Get("dr-house", rec.ID); !errors.Is(err, ErrNotFound) {
			t.Fatalf("probe %d of unknown %s: want ErrNotFound, got %v", i, rec.ID, err)
		}
	}
	if !v.neg.has(rec.ID) {
		t.Fatalf("unknown-record probe did not populate the negative cache")
	}
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Get("dr-house", rec.ID)
	if err != nil {
		t.Fatalf("Get after Put of a negatively-cached ID: %v", err)
	}
	if got.Body != rec.Body {
		t.Fatal("Get after Put returned wrong content")
	}
	// History and GetVersion share the read path; they must see it too.
	if _, err := v.History("dr-house", rec.ID); err != nil {
		t.Fatalf("History after Put: %v", err)
	}
	if _, _, err := v.GetVersion("dr-house", rec.ID, 1); err != nil {
		t.Fatalf("GetVersion after Put: %v", err)
	}
}

// TestShredNeverCachedAsNotFound keeps shredded and not-found distinct: a
// shredded record's reads return ErrShredded forever and must not decay into
// ErrNotFound via the negative cache.
func TestShredNeverCachedAsNotFound(t *testing.T) {
	v, vc := newVault(t)
	rec := clinicalRecord(t, 78)
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	vc.Advance(40 * 365 * 24 * time.Hour)
	if err := v.Shred("arch-lee", rec.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := v.Get("dr-house", rec.ID); !errors.Is(err, ErrShredded) {
			t.Fatalf("read %d of shredded record: want ErrShredded, got %v", i, err)
		}
	}
	if v.neg.has(rec.ID) {
		t.Fatal("shredded record entered the negative cache")
	}
}

// TestCachedReadsSurviveShredOfNeighbor exercises block-cache invalidation
// scoping: shredding one record drops its blocks but leaves other records'
// cached blocks intact and correct.
func TestCachedReadsSurviveShredOfNeighbor(t *testing.T) {
	v, vc := newVault(t)
	recs := clinicalRecords(t, 80, 2)
	keep, doomed := recs[0], recs[1]
	if _, err := v.Put("dr-house", keep); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Put("dr-house", doomed); err != nil {
		t.Fatal(err)
	}
	// Warm both records' block-cache entries.
	for _, id := range []string{keep.ID, doomed.ID} {
		if _, _, err := v.Get("dr-house", id); err != nil {
			t.Fatal(err)
		}
	}
	vc.Advance(40 * 365 * 24 * time.Hour)
	if err := v.Shred("arch-lee", doomed.ID); err != nil {
		t.Fatal(err)
	}
	got, _, err := v.Get("dr-house", keep.ID)
	if err != nil {
		t.Fatalf("cached read of surviving record: %v", err)
	}
	if got.Body != keep.Body {
		t.Fatal("cached read of surviving record returned wrong content")
	}
	if _, _, err := v.Get("dr-house", doomed.ID); !errors.Is(err, ErrShredded) {
		t.Fatalf("read of shredded record: want ErrShredded, got %v", err)
	}
}

// TestVerifyAllCatchesStaleDEKAfterShred is the core-level half of the
// revert-the-invalidation check: if Shred stops purging the DEK cache (test
// hook), the next VerifyAll must fail with ErrTampered instead of certifying
// a vault whose "destroyed" key is still obtainable.
func TestVerifyAllCatchesStaleDEKAfterShred(t *testing.T) {
	vcrypto.TestHookKeepDEKCacheOnShred.Store(true)
	defer vcrypto.TestHookKeepDEKCacheOnShred.Store(false)

	v, vc := newVault(t)
	rec := clinicalRecord(t, 82)
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	vc.Advance(40 * 365 * 24 * time.Hour)
	if err := v.Shred("arch-lee", rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifyAll(nil, nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("VerifyAll with a cached post-shred DEK: want ErrTampered, got %v", err)
	}

	// With invalidation restored the same sequence verifies clean.
	vcrypto.TestHookKeepDEKCacheOnShred.Store(false)
	v2, vc2 := newVault(t)
	rec2 := clinicalRecord(t, 83)
	if _, err := v2.Put("dr-house", rec2); err != nil {
		t.Fatal(err)
	}
	vc2.Advance(40 * 365 * 24 * time.Hour)
	if err := v2.Shred("arch-lee", rec2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.VerifyAll(nil, nil); err != nil {
		t.Fatalf("VerifyAll after a proper shred: %v", err)
	}
}

// TestReopenedVaultIsCold pins the durability boundary of the caches: they
// are process memory, so a reopened vault starts with zero cached DEKs and
// must re-earn every hit from the authoritative stores.
func TestReopenedVaultIsCold(t *testing.T) {
	dir := t.TempDir()
	master := mustKey(t)
	vc := clock.NewVirtual(testEpoch)

	v := openDurable(t, dir, master, vc)
	rec := clinicalRecord(t, 84)
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.Get("dr-house", rec.ID); err != nil {
		t.Fatal(err)
	}
	if v.keys.CachedDEKs() == 0 {
		t.Fatal("read did not warm the DEK cache")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2 := openDurable(t, dir, master, vc)
	defer v2.Close()
	if n := v2.keys.CachedDEKs(); n != 0 {
		t.Fatalf("reopened vault has %d cached DEKs, want 0", n)
	}
	got, _, err := v2.Get("dr-house", rec.ID)
	if err != nil {
		t.Fatalf("cold read after reopen: %v", err)
	}
	if got.Body != rec.Body {
		t.Fatal("cold read returned wrong content")
	}
	if v2.keys.CachedDEKs() == 0 {
		t.Fatal("cold read did not refill the cache")
	}
}

// TestConcurrentGetShredStress is the vault-level -race stress: readers
// hammer Get across a set of records while a destroyer shreds them one by
// one. Readers may see the record or ErrShredded — never a torn result, a
// stale body, or any other error — and afterward every record is gone from
// every cache layer.
func TestConcurrentGetShredStress(t *testing.T) {
	v, vc := newVault(t)
	const n = 16
	ids := make([]string, 0, n)
	for _, rec := range clinicalRecords(t, 100, n) {
		if _, err := v.Put("dr-house", rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	vc.Advance(40 * 365 * 24 * time.Hour)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(g*13+i)%n]
				if _, _, err := v.Get("dr-house", id); err != nil && !errors.Is(err, ErrShredded) {
					t.Errorf("Get(%s): %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range ids {
			if err := v.Shred("arch-lee", id); err != nil {
				t.Errorf("Shred(%s): %v", id, err)
				return
			}
		}
	}()
	wg.Wait()

	for _, id := range ids {
		if _, _, err := v.Get("dr-house", id); !errors.Is(err, ErrShredded) {
			t.Fatalf("after stress, Get(%s): want ErrShredded, got %v", id, err)
		}
		if v.keys.HasCachedDEK(id) {
			t.Fatalf("after stress, %s still has a cached plaintext DEK", id)
		}
	}
	if _, err := v.VerifyAll(nil, nil); err != nil {
		t.Fatalf("VerifyAll after stress: %v", err)
	}
}
