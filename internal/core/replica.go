package core

// Replica-side metadata readers for WAL replication (internal/repl).
//
// A warm follower holds a byte-for-byte replica of a primary's vault
// directory but has no master key, so it cannot open the vault to learn its
// Merkle position. It can, however, compute it: the metadata snapshot
// persists the commitment log's leaf hashes in the clear (they are hashes,
// not PHI), and every WAL 'V' entry carries the fields the leaf commits to
// — record ID, version number, ciphertext hash. ReplicaHeads re-derives the
// per-shard (size, root) pair from those files alone, mirroring the replay
// rules recovery applies (snapshot-covered WAL entries append no leaf, a
// torn WAL tail is ignored). Anti-entropy compares these against the
// primary's live tree to detect divergence without ever shipping a key.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"strconv"

	"medvault/internal/audit"
	"medvault/internal/faultfs"
	"medvault/internal/merkle"
	"medvault/internal/wal"
)

// ReplicaHead is one shard's Merkle position as computed from raw replica
// files, without keys.
type ReplicaHead struct {
	Size uint64
	Root merkle.Hash
}

// ReplicaHeads computes every shard's (size, root) directly from the
// metadata files under dir — the snapshot's persisted leaf hashes plus the
// leaves implied by WAL entries the snapshot does not cover. The shard count
// is taken from the cluster manifest (1 when absent, matching OpenCluster).
func ReplicaHeads(fsys faultfs.FS, dir string) ([]ReplicaHead, error) {
	shards := 1
	if data, err := fsys.ReadFile(filepath.Join(dir, clusterManifest)); err == nil {
		n, perr := parseManifest(data)
		if perr != nil {
			return nil, fmt.Errorf("core: replica manifest: %w", perr)
		}
		shards = n
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("core: reading replica manifest: %w", err)
	}
	out := make([]ReplicaHead, shards)
	for i := 0; i < shards; i++ {
		d := dir
		if shards > 1 {
			d = filepath.Join(dir, "shard-"+strconv.Itoa(i))
		}
		h, err := replicaShardHead(fsys, d)
		if err != nil {
			return nil, fmt.Errorf("core: replica head of shard %d: %w", i, err)
		}
		out[i] = h
	}
	return out, nil
}

// replicaShardHead derives one shard directory's Merkle position.
func replicaShardHead(fsys faultfs.FS, dir string) (ReplicaHead, error) {
	var leaves []merkle.Hash
	counts := make(map[string]uint64) // id -> highest version with a leaf
	snap, err := fsys.ReadFile(filepath.Join(dir, "meta.snap"))
	switch {
	case err == nil:
		if leaves, err = snapshotLeaves(snap, counts); err != nil {
			return ReplicaHead{}, err
		}
	case errors.Is(err, fs.ErrNotExist):
		// fresh shard
	default:
		return ReplicaHead{}, fmt.Errorf("reading snapshot: %w", err)
	}
	walData, err := fsys.ReadFile(filepath.Join(dir, "meta.wal"))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return ReplicaHead{}, fmt.Errorf("reading WAL: %w", err)
	}
	var off int
	for off < len(walData) {
		e, n, ok := wal.DecodeFrame(walData[off:])
		if !ok {
			break // torn tail: ignored, exactly as recovery truncates it
		}
		off += n
		lh, id, number, isVersion, err := versionEntryLeaf(e.Data)
		if err != nil {
			return ReplicaHead{}, fmt.Errorf("WAL entry at offset %d: %w", off-n, err)
		}
		if !isVersion || number <= counts[id] {
			// Shred/hold entries append no leaf; neither does a version the
			// snapshot already restored (WAL-replay idempotence).
			continue
		}
		counts[id] = number
		leaves = append(leaves, lh)
	}
	t := merkle.TreeFromLeafHashes(leaves)
	return ReplicaHead{Size: t.Size(), Root: t.Root()}, nil
}

// snapshotLeaves extracts the persisted leaf hashes and per-record version
// counts from a metadata snapshot, without keys.
func snapshotLeaves(data []byte, counts map[string]uint64) ([]merkle.Hash, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != snapMagic {
		return nil, fmt.Errorf("snapshot has bad magic")
	}
	if ver, err := readU16(r); err != nil || ver != snapVersion {
		return nil, fmt.Errorf("unsupported snapshot version")
	}
	if _, err := readU64(r); err != nil { // leafSeq
		return nil, fmt.Errorf("truncated snapshot: %w", err)
	}
	nRecords, err := readU32(r)
	if err != nil {
		return nil, fmt.Errorf("truncated snapshot: %w", err)
	}
	for i := uint32(0); i < nRecords; i++ {
		id, err := readStr(r)
		if err != nil {
			return nil, fmt.Errorf("truncated snapshot: %w", err)
		}
		if _, err := readStr(r); err != nil { // category
			return nil, fmt.Errorf("truncated snapshot: %w", err)
		}
		if _, err := readStr(r); err != nil { // mrn
			return nil, fmt.Errorf("truncated snapshot: %w", err)
		}
		if _, err := r.ReadByte(); err != nil { // flags
			return nil, fmt.Errorf("truncated snapshot: %w", err)
		}
		if _, err := readU64(r); err != nil { // createdNano
			return nil, fmt.Errorf("truncated snapshot: %w", err)
		}
		nVersions, err := readU32(r)
		if err != nil {
			return nil, fmt.Errorf("truncated snapshot: %w", err)
		}
		counts[id] = uint64(nVersions)
		for j := uint32(0); j < nVersions; j++ {
			if _, err := readStr(r); err != nil { // author
				return nil, fmt.Errorf("truncated snapshot: %w", err)
			}
			// number u64 | segment u32 | offset u64 | ctHash 32 | ts u64 | leafIdx u64
			skip := make([]byte, 8+4+8+32+8+8)
			if _, err := io.ReadFull(r, skip); err != nil {
				return nil, fmt.Errorf("truncated snapshot: %w", err)
			}
		}
	}
	if _, err := readBytesField(r); err != nil { // keystore snapshot
		return nil, fmt.Errorf("truncated snapshot: %w", err)
	}
	leafBytes, err := readBytesField(r)
	if err != nil {
		return nil, fmt.Errorf("truncated snapshot: %w", err)
	}
	return merkle.DecodeHashes(leafBytes)
}

// versionEntryLeaf computes the Merkle leaf hash a WAL 'V' entry commits;
// isVersion is false for the other (leaf-less) entry kinds.
func versionEntryLeaf(data []byte) (lh merkle.Hash, id string, number uint64, isVersion bool, err error) {
	if len(data) == 0 {
		return lh, "", 0, false, fmt.Errorf("empty WAL entry")
	}
	switch data[0] {
	case 'S', 'H', 'R':
		return lh, "", 0, false, nil
	case 'V':
	default:
		return lh, "", 0, false, fmt.Errorf("unknown WAL entry kind 0x%02x", data[0])
	}
	r := bytes.NewReader(data[1:])
	if id, err = readStr(r); err != nil {
		return lh, "", 0, false, fmt.Errorf("malformed WAL version entry: %w", err)
	}
	for i := 0; i < 3; i++ { // category, mrn, author
		if _, err = readStr(r); err != nil {
			return lh, "", 0, false, fmt.Errorf("malformed WAL version entry: %w", err)
		}
	}
	if number, err = readU64(r); err != nil {
		return lh, "", 0, false, fmt.Errorf("malformed WAL version entry: %w", err)
	}
	if _, err = readU32(r); err != nil { // ref segment
		return lh, "", 0, false, fmt.Errorf("malformed WAL version entry: %w", err)
	}
	if _, err = readU64(r); err != nil { // ref offset
		return lh, "", 0, false, fmt.Errorf("malformed WAL version entry: %w", err)
	}
	var ctHash [32]byte
	if _, err = io.ReadFull(r, ctHash[:]); err != nil {
		return lh, "", 0, false, fmt.Errorf("malformed WAL version entry: %w", err)
	}
	return merkle.LeafHash(leafData(id, number, ctHash)), id, number, true, nil
}

// MerkleRootAt returns the shard's commitment-log root at a historical size
// — the primary-side half of anti-entropy: a follower reporting (size, root)
// is consistent iff this root matches, i.e. the follower's log is a prefix.
func (v *Vault) MerkleRootAt(size uint64) (merkle.Hash, error) {
	return v.log.Tree().RootAt(size)
}

// MerkleRootAt returns shard's root at a historical size (see Vault).
func (c *Cluster) MerkleRootAt(shard int, size uint64) (merkle.Hash, error) {
	if shard < 0 || shard >= len(c.shards) {
		return merkle.Hash{}, fmt.Errorf("core: no shard %d", shard)
	}
	return c.shards[shard].MerkleRootAt(size)
}

// AuditReplicationFence records a fenced-off replication write in the audit
// chain: a demoted primary with a stale epoch tried to commit and was
// rejected. The event is appended as the replication subsystem itself — the
// rejection is a policy outcome, not a principal's action, and the detail
// carries the epochs so the split-brain window is reconstructible from the
// journal alone.
func (v *Vault) AuditReplicationFence(detail string) error {
	_, err := v.aud.Append(audit.Event{
		Actor:   "replication",
		Action:  audit.ActionPolicy,
		Outcome: audit.OutcomeDenied,
		Detail:  detail,
	})
	return err
}

// AuditReplicationFence records the fence rejection on shard 0 — the
// cluster's canonical chain for store-level events.
func (c *Cluster) AuditReplicationFence(detail string) error {
	return c.shards[0].AuditReplicationFence(detail)
}
