package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"medvault/internal/audit"
	"medvault/internal/merkle"
	"medvault/internal/vcrypto"
)

// Report summarizes a full-vault verification pass.
type Report struct {
	RecordsChecked    int // live and shredded records examined
	VersionsChecked   int // version ciphertexts hash-verified and proof-checked
	AuditEvents       int // audit chain length verified
	ProvenanceChains  int // custody chains verified
	HeadsChecked      int // remembered tree heads proven consistent
	CheckpointsProven int // remembered audit checkpoints proven
}

// VerifyAll runs the complete integrity sweep the paper's malicious-insider
// threat model demands:
//
//  1. Every version of every record (shredded ones included — their
//     ciphertext must still match its commitment even though it can no
//     longer be decrypted): CRC framing, ciphertext hash, and a Merkle
//     inclusion proof against the current tree.
//  2. Live records must also decrypt cleanly under their DEK with the
//     version-bound associated data.
//  3. The commitment-log size must equal the number of committed versions —
//     a truncated metadata table (rollback hiding a correction) surfaces
//     here.
//  4. Every remembered SignedTreeHead must be signature-valid and the
//     current log proven an append-only extension of it — wholesale history
//     rewriting surfaces here.
//  5. The audit hash chain and every custody chain must verify; remembered
//     audit checkpoints must match.
//
// The verification itself is written to the audit log.
//
// VerifyAll holds the op gate exclusively: the sweep sees a frozen vault —
// no operation can move the commitment log, the registry, or any version
// list mid-verification — so the size/leaf accounting it checks can never
// be a benign in-flight transient.
func (v *Vault) VerifyAll(rememberedHeads []merkle.SignedTreeHead, rememberedCheckpoints []audit.Checkpoint) (_ Report, err error) {
	defer v.observeOp(context.Background(), "verify_all", "", time.Now())(&err)
	var rep Report
	if err := v.gate.beginExclusive(); err != nil {
		return rep, err
	}
	defer v.gate.endExclusive()
	ids := make([]string, 0, len(v.records))
	for id := range v.records {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	size := v.log.Size()
	root, rootErr := v.log.Tree().RootAt(size)
	if rootErr != nil {
		return rep, rootErr
	}

	fail := func(err error) (Report, error) {
		_, _ = v.aud.Append(audit.Event{
			Actor: v.name, Action: audit.ActionVerify,
			Outcome: audit.OutcomeError, Detail: err.Error(),
		})
		return rep, err
	}

	// (3) every committed version is accounted for.
	var totalVersions uint64
	for _, st := range v.records {
		totalVersions += uint64(len(st.versions))
	}
	if totalVersions != size || v.leafSeq.Load() != size {
		return fail(fmt.Errorf("%w: metadata lists %d versions but commitment log has %d leaves", ErrTampered, totalVersions, size))
	}

	// (1)+(2) per-record verification.
	for _, id := range ids {
		st := v.records[id]
		shredded := st.shredded.Load()
		sanitized := st.sanitized
		rep.RecordsChecked++
		if shredded {
			// Secure-deletion verification: a shredded record's key must be
			// unobtainable from every path. Get exercises the cache-then-
			// unwrap path a reader would take; HasCachedDEK additionally
			// proves no plaintext DEK lingers in the cache — a cached key
			// outliving crypto-shredding is exactly the Boneh–Lipton
			// revocable-backup failure the cache design must exclude.
			if _, err := v.keys.Get(id); !errors.Is(err, vcrypto.ErrShredded) {
				return fail(fmt.Errorf("%w: %s: shredded record's data key is still obtainable", ErrTampered, id))
			}
			if v.keys.HasCachedDEK(id) {
				return fail(fmt.Errorf("%w: %s: plaintext DEK cached after shred", ErrTampered, id))
			}
		}
		for _, ver := range st.versions {
			// Sanitized records have no bytes left on the medium — by
			// design. Their commitment leaves still verify below.
			var ct []byte
			if !sanitized {
				var err error
				ct, err = v.blocks.Read(ver.Ref)
				if err != nil {
					return fail(fmt.Errorf("%w: %s v%d: %v", ErrTampered, id, ver.Number, err))
				}
				if vcrypto.Hash(ct) != ver.CtHash {
					return fail(fmt.Errorf("%w: %s v%d: ciphertext hash mismatch", ErrTampered, id, ver.Number))
				}
			}
			proof, err := v.log.Tree().InclusionProof(ver.LeafIndex, size)
			if err != nil {
				return fail(fmt.Errorf("core: proving %s v%d: %w", id, ver.Number, err))
			}
			if err := merkle.VerifyInclusion(leafData(id, ver.Number, ver.CtHash), ver.LeafIndex, size, proof, root); err != nil {
				return fail(fmt.Errorf("%w: %s v%d: %v", ErrTampered, id, ver.Number, err))
			}
			if !shredded {
				dek, err := v.keys.Get(id)
				if err != nil {
					return fail(fmt.Errorf("core: key for %s: %w", id, err))
				}
				if _, err := vcrypto.Open(dek, ct, sealAAD(id, ver.Number)); err != nil {
					return fail(fmt.Errorf("%w: %s v%d: %v", ErrTampered, id, ver.Number, err))
				}
			}
			rep.VersionsChecked++
		}
	}

	// (4) remembered heads.
	for _, head := range rememberedHeads {
		if err := v.log.CheckExtends(head, v.signer.Public()); err != nil {
			return fail(fmt.Errorf("%w: commitment log does not extend remembered head of size %d: %v", ErrTampered, head.Size, err))
		}
		rep.HeadsChecked++
	}

	// (5) audit chain and provenance.
	n, err := v.aud.Verify()
	if err != nil {
		return fail(fmt.Errorf("%w: audit chain: %v", ErrTampered, err))
	}
	rep.AuditEvents = n
	for _, cp := range rememberedCheckpoints {
		if err := v.aud.VerifyAgainst(cp, v.signer.Public()); err != nil {
			return fail(fmt.Errorf("%w: audit checkpoint at %d: %v", ErrTampered, cp.Seq, err))
		}
		rep.CheckpointsProven++
	}
	// Custody chains may legitimately carry other systems' signatures
	// (migrated records), so signer trust is not restricted here.
	chains, err := v.prov.VerifyAll(nil)
	if err != nil {
		return fail(fmt.Errorf("%w: provenance: %v", ErrTampered, err))
	}
	rep.ProvenanceChains = chains

	_, _ = v.aud.Append(audit.Event{
		Actor: v.name, Action: audit.ActionVerify, Outcome: audit.OutcomeAllowed,
		Detail: fmt.Sprintf("verified %d records, %d versions, %d audit events", rep.RecordsChecked, rep.VersionsChecked, rep.AuditEvents),
	})
	return rep, nil
}
