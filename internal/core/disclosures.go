package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"medvault/internal/audit"
	"medvault/internal/authz"
)

// Disclosure is one access to a patient's EPHI, as reconstructed from the
// tamper-evident audit trail for a HIPAA §164.528 "accounting of
// disclosures" request.
type Disclosure struct {
	Timestamp  time.Time
	Actor      string
	Action     audit.Action
	Record     string
	Version    uint64
	Outcome    audit.Outcome
	BreakGlass bool // the access rode an emergency grant
}

// AccountingOfDisclosures answers a patient's (or their representative's)
// statutory request: every access to every record carrying the patient's
// MRN, in chronological order, reconstructed from the audit chain. Denied
// attempts are included — a patient is entitled to know who *tried*.
//
// The query requires audit permission and is itself audited.
func (v *Vault) AccountingOfDisclosures(actor, mrn string) ([]Disclosure, error) {
	return v.AccountingOfDisclosuresCtx(context.Background(), actor, mrn)
}

// AccountingOfDisclosuresCtx is AccountingOfDisclosures under a
// caller-supplied context.
func (v *Vault) AccountingOfDisclosuresCtx(ctx context.Context, actor, mrn string) (_ []Disclosure, retErr error) {
	ctx, sp := v.span(ctx, "core.disclosures")
	defer func() { sp.End(retErr) }()
	if err := v.gate.begin(); err != nil {
		return nil, err
	}
	defer v.gate.end()
	if err := v.authorize(ctx, actor, authz.ActAudit, audit.ActionVerify, "", 0, ""); err != nil {
		return nil, err
	}
	if mrn == "" {
		return nil, fmt.Errorf("core: empty MRN")
	}
	out, found := v.disclosuresScan(mrn)
	if !found {
		return nil, fmt.Errorf("%w: no records for MRN %s", ErrNotFound, mrn)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp.Before(out[j].Timestamp) })
	return out, nil
}

// disclosureQueryAudit authorizes (and thereby audits) a disclosure
// accounting query on this vault without running the scan. The cluster path
// uses it so every shard's audit chain records the query decision before
// any per-shard scanning begins.
func (v *Vault) disclosureQueryAudit(ctx context.Context, actor string) error {
	if err := v.gate.begin(); err != nil {
		return err
	}
	defer v.gate.end()
	return v.authorize(ctx, actor, authz.ActAudit, audit.ActionVerify, "", 0, "")
}

// disclosuresScan reconstructs this vault's disclosures for the MRN from
// its audit chain, unsorted. It reports found=false when the vault holds no
// record (live or shredded) with that MRN, in which case the event scan is
// skipped entirely. The caller must hold the op gate and applies the final
// chronological sort — on a cluster, after concatenating per-shard results
// in shard order.
func (v *Vault) disclosuresScan(mrn string) (out []Disclosure, found bool) {
	// Collect the patient's record IDs (shredded ones included: the access
	// history of a destroyed record is still disclosable). The MRN is
	// immutable after creation, so the registry lock alone suffices.
	v.regMu.RLock()
	recordSet := make(map[string]bool)
	for id, st := range v.records {
		if st.mrn == mrn {
			recordSet[id] = true
		}
	}
	v.regMu.RUnlock()
	if len(recordSet) == 0 {
		return nil, false
	}

	// Mark events that happened under break-glass: the grant's elevated
	// accesses carry a paired break-glass audit event at the same (actor,
	// record, seq+1) — we detect them via the explicit ActionBreakGlass
	// entries referencing the record. Seq numbers are local to this vault's
	// chain, so the pairing is shard-local by construction: an operation and
	// its break-glass marker both name the record and therefore live on the
	// same shard.
	events := v.aud.Search(audit.Query{})
	breakGlassSeqs := make(map[uint64]bool)
	for _, e := range events {
		if e.Action == audit.ActionBreakGlass && e.Record != "" {
			// The elevated operation is the immediately preceding event by
			// the same actor on the same record.
			breakGlassSeqs[e.Seq-1] = true
		}
	}
	for _, e := range events {
		if !recordSet[e.Record] {
			continue
		}
		switch e.Action {
		case audit.ActionRead, audit.ActionCreate, audit.ActionCorrect,
			audit.ActionDelete, audit.ActionMigrateOut, audit.ActionMigrateIn,
			audit.ActionBackup, audit.ActionRestore:
			out = append(out, Disclosure{
				Timestamp:  e.Timestamp,
				Actor:      e.Actor,
				Action:     e.Action,
				Record:     e.Record,
				Version:    e.Version,
				Outcome:    e.Outcome,
				BreakGlass: breakGlassSeqs[e.Seq],
			})
		}
	}
	return out, true
}

// PatientRecords returns the record IDs carrying the patient's MRN that the
// actor is permitted to read — the entry point for a patient-access request
// (HIPAA right of access, the paper's "individuals have the right to
// request correction" precondition).
func (v *Vault) PatientRecords(actor, mrn string) ([]string, error) {
	return v.PatientRecordsCtx(context.Background(), actor, mrn)
}

// PatientRecordsCtx is PatientRecords under a caller-supplied context. The
// scan is pure in-memory registry work, so the span has no children; it
// exists so patient-access requests are visible in traces like every other
// operation.
func (v *Vault) PatientRecordsCtx(ctx context.Context, actor, mrn string) (_ []string, retErr error) {
	_, sp := v.span(ctx, "core.patient_records")
	defer func() { sp.End(retErr) }()
	v.regMu.RLock()
	type cand struct {
		id  string
		cat string
	}
	var cands []cand
	for id, st := range v.records {
		if st.mrn == mrn && !st.shredded.Load() {
			cands = append(cands, cand{id, string(st.category)})
		}
	}
	v.regMu.RUnlock()
	var out []string
	for _, c := range cands {
		if v.auth.Check(actor, authz.ActRead, c.cat).Allowed {
			out = append(out, c.id)
		}
	}
	sort.Strings(out)
	return out, nil
}
