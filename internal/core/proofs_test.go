package core

import (
	"errors"
	"testing"

	"medvault/internal/ehr"
	"medvault/internal/vcrypto"
)

func TestProveVersionVerifiesExternally(t *testing.T) {
	v, _ := newVault(t)
	g := ehr.NewGenerator(40, testEpoch)
	var rec ehr.Record
	for rec = g.Next(); rec.Category != ehr.CategoryClinical; rec = g.Next() {
	}
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Correct("dr-house", g.Correction(rec)); err != nil {
		t.Fatal(err)
	}
	// More records after, so the proof is a real path, not a root.
	for i := 0; i < 9; i++ {
		r := g.Next()
		if r.Category != ehr.CategoryClinical {
			continue
		}
		if _, err := v.Put("dr-house", r); err != nil {
			t.Fatal(err)
		}
	}

	for _, n := range []uint64{1, 2} {
		proof, err := v.ProveVersion("dr-house", rec.ID, n)
		if err != nil {
			t.Fatalf("ProveVersion v%d: %v", n, err)
		}
		// The external auditor holds only the vault's public key.
		if err := VerifyVersionProof(v.PublicKey(), proof, nil); err != nil {
			t.Errorf("v%d proof rejected: %v", n, err)
		}
	}

	// Forgeries fail.
	proof, err := v.ProveVersion("dr-house", rec.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	forged := proof
	forged.Version = 1 // claim the correction is the original
	if err := VerifyVersionProof(v.PublicKey(), forged, nil); !errors.Is(err, ErrTampered) {
		t.Errorf("version-swapped proof accepted: %v", err)
	}
	forged2 := proof
	forged2.CtHash[0] ^= 1
	if err := VerifyVersionProof(v.PublicKey(), forged2, nil); !errors.Is(err, ErrTampered) {
		t.Errorf("hash-swapped proof accepted: %v", err)
	}
	forged3 := proof
	forged3.RecordID = "someone-else"
	if err := VerifyVersionProof(v.PublicKey(), forged3, nil); !errors.Is(err, ErrTampered) {
		t.Errorf("record-swapped proof accepted: %v", err)
	}
	// Wrong key: the head signature fails.
	other, err := vcrypto.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyVersionProof(other.Public(), proof, nil); err == nil {
		t.Error("proof verified under the wrong authority key")
	}
	// Ciphertext binding: wrong bytes fail.
	if err := VerifyVersionProof(v.PublicKey(), proof, []byte("not the ciphertext")); !errors.Is(err, ErrTampered) {
		t.Errorf("wrong ciphertext accepted: %v", err)
	}
}

func TestProveVersionAuthz(t *testing.T) {
	v, _ := newVault(t)
	rec := clinicalRecord(t, 41)
	if _, err := v.Put("dr-house", rec); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ProveVersion("clerk-bob", rec.ID, 1); !errors.Is(err, ErrDenied) {
		t.Errorf("clerk obtained a clinical proof: %v", err)
	}
	if _, err := v.ProveVersion("dr-house", rec.ID, 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version: %v", err)
	}
	if _, err := v.ProveVersion("dr-house", "ghost", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing record: %v", err)
	}
}

func TestProveExtension(t *testing.T) {
	v, _ := newVault(t)
	g := ehr.NewGenerator(42, testEpoch)
	put := func(n int) {
		for i := 0; i < n; {
			r := g.Next()
			if r.Category != ehr.CategoryClinical {
				continue
			}
			if _, err := v.Put("dr-house", r); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	put(5)
	oldHead := v.Head()
	put(7)
	proof, newHead, err := v.ProveExtension(oldHead)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyExtension(v.PublicKey(), oldHead, newHead, proof); err != nil {
		t.Errorf("honest extension rejected: %v", err)
	}
	// A head from another vault (different key) is rejected.
	other, _ := newVault(t)
	if err := VerifyExtension(other.PublicKey(), oldHead, newHead, proof); err == nil {
		t.Error("extension verified under wrong key")
	}
	// Swapped heads fail consistency.
	if err := VerifyExtension(v.PublicKey(), newHead, newHead, proof); err == nil {
		t.Error("mismatched proof accepted")
	}
}
