package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"medvault/internal/ehr"
	"medvault/internal/provenance"
	"medvault/internal/vcrypto"
)

// ErrBadBundle indicates an undecodable serialized export bundle.
var ErrBadBundle = errors.New("core: corrupt export bundle encoding")

// EncodeBundle serializes an ExportBundle for transfer or backup. The bytes
// contain PLAINTEXT record content: callers must protect them in transit and
// at rest (the migrate package sends them over an authenticated channel; the
// backup package seals them under the backup key).
//
// Layout: magic "MVXB" | str id | str category | u32 nVersions
//
//	{ bytes record | str author | u64 number | i64 tsNano | 32B plainHash }*
//	u32 nCustody { bytes provenanceEvent }*
func EncodeBundle(b ExportBundle) []byte {
	var buf bytes.Buffer
	buf.WriteString("MVXB")
	writeStr(&buf, b.ID)
	writeStr(&buf, string(b.Category))
	writeU32(&buf, uint32(len(b.Versions)))
	for _, ev := range b.Versions {
		writeBytes(&buf, ehr.Encode(ev.Record))
		writeStr(&buf, ev.Version.Author)
		writeU64(&buf, ev.Version.Number)
		writeU64(&buf, uint64(ev.Version.Timestamp.UnixNano()))
		buf.Write(ev.PlainHash[:])
	}
	writeU32(&buf, uint32(len(b.Custody)))
	for _, ce := range b.Custody {
		writeBytes(&buf, provenance.EncodeEvent(ce))
	}
	return buf.Bytes()
}

// DecodeBundle parses the output of EncodeBundle.
func DecodeBundle(data []byte) (ExportBundle, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != "MVXB" {
		return ExportBundle{}, fmt.Errorf("%w: bad magic", ErrBadBundle)
	}
	var b ExportBundle
	id, err := readStr(r)
	if err != nil {
		return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	b.ID = id
	cat, err := readStr(r)
	if err != nil {
		return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	b.Category = ehr.Category(cat)
	nVer, err := readU32(r)
	if err != nil {
		return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	for i := uint32(0); i < nVer; i++ {
		recBytes, err := readBytesField(r)
		if err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		rec, err := ehr.Decode(recBytes)
		if err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		var ev ExportedVersion
		ev.Record = rec
		if ev.Version.Author, err = readStr(r); err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		if ev.Version.Number, err = readU64(r); err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		tsNano, err := readU64(r)
		if err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		ev.Version.Timestamp = time.Unix(0, int64(tsNano)).UTC()
		if _, err := io.ReadFull(r, ev.PlainHash[:]); err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		b.Versions = append(b.Versions, ev)
	}
	nCust, err := readU32(r)
	if err != nil {
		return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	for i := uint32(0); i < nCust; i++ {
		ceBytes, err := readBytesField(r)
		if err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		ce, err := provenance.DecodeEvent(ceBytes)
		if err != nil {
			return ExportBundle{}, fmt.Errorf("%w: %v", ErrBadBundle, err)
		}
		b.Custody = append(b.Custody, ce)
	}
	if r.Len() != 0 {
		return ExportBundle{}, fmt.Errorf("%w: trailing bytes", ErrBadBundle)
	}
	return b, nil
}

// CanonicalRecordBytes returns the canonical encoding of a record — the
// bytes whose hash is the cross-system content commitment (PlainHash).
func CanonicalRecordBytes(rec ehr.Record) []byte { return ehr.Encode(rec) }

// Sign signs data under the vault's identity with domain separation by
// purpose. Used by the migrate and backup packages for manifests.
func (v *Vault) Sign(purpose string, data []byte) []byte {
	return v.signer.Sign(signingBytes(purpose, data))
}

// VerifySignature verifies a purpose-bound signature by pub.
func VerifySignature(pub vcrypto.PublicKey, purpose string, data, sig []byte) error {
	return pub.Verify(signingBytes(purpose, data), sig)
}

func signingBytes(purpose string, data []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString("medvault/sig/")
	buf.WriteString(purpose)
	buf.WriteByte(0)
	buf.Write(data)
	return buf.Bytes()
}
