package frame

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("first"), {}, []byte("a longer third payload")}
	for i, p := range payloads {
		buf = Append(buf, uint64(i), p)
	}
	off := 0
	for i, p := range payloads {
		seq, data, n, ok := Decode(buf[off:])
		if !ok {
			t.Fatalf("frame %d: decode failed", i)
		}
		if seq != uint64(i) || !bytes.Equal(data, p) {
			t.Fatalf("frame %d: got seq=%d data=%q, want seq=%d data=%q", i, seq, data, i, p)
		}
		sz, sok := Size(buf[off:])
		if !sok || sz != n {
			t.Fatalf("frame %d: Size=%d,%v want %d,true", i, sz, sok, n)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestTornTail(t *testing.T) {
	full := Append(nil, 7, []byte("payload"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, ok := Decode(full[:cut]); ok {
			t.Fatalf("decode succeeded on %d/%d bytes", cut, len(full))
		}
	}
}

func TestCorruptPayload(t *testing.T) {
	full := Append(nil, 7, []byte("payload"))
	full[len(full)-1] ^= 0xff
	if _, _, _, ok := Decode(full); ok {
		t.Fatal("decode accepted a corrupt payload")
	}
}

func TestDecodeCopies(t *testing.T) {
	buf := Append(nil, 1, []byte("abc"))
	_, data, _, ok := Decode(buf)
	if !ok {
		t.Fatal("decode failed")
	}
	buf[Overhead] = 'x'
	if string(data) != "abc" {
		t.Fatal("decoded data aliases the input buffer")
	}
}
