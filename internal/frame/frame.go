// Package frame is the CRC-framed record codec shared by the WAL, the
// replication stream, and the flight recorder's crash-surviving segments.
//
// Layout of one frame: u64 seq | u32 len | u32 crc32c(data) | data, all
// big-endian. The tail rule every consumer shares: decode frames from the
// front until one is incomplete or fails its CRC, then discard the rest —
// a torn final frame from a power cut is truncated, never skipped over.
//
// The package sits below wal and obs (it imports nothing but the standard
// library), which is what lets the flight recorder reuse the exact framing
// the WAL is torture-proven on without an import cycle: wal depends on obs
// for its metrics, and obs depends on this codec for flight segments.
package frame

import (
	"encoding/binary"
	"hash/crc32"
)

// Overhead is the framing cost per record: u64 seq + u32 len + u32 crc.
const Overhead = 8 + 4 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Append encodes one framed record onto buf and returns the extended slice.
func Append(buf []byte, seq uint64, data []byte) []byte {
	var hdr [Overhead]byte
	binary.BigEndian.PutUint64(hdr[0:8], seq)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(data)))
	binary.BigEndian.PutUint32(hdr[12:16], crc32.Checksum(data, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, data...)
}

// Decode parses one frame from the front of b. ok is false when the bytes do
// not contain a complete valid frame (a torn tail). data is a copy — callers
// may retain it after b's backing array is reused.
func Decode(b []byte) (seq uint64, data []byte, n int, ok bool) {
	if len(b) < Overhead {
		return 0, nil, 0, false
	}
	seq = binary.BigEndian.Uint64(b[0:8])
	ln := binary.BigEndian.Uint32(b[8:12])
	crc := binary.BigEndian.Uint32(b[12:16])
	if uint64(Overhead)+uint64(ln) > uint64(len(b)) {
		return 0, nil, 0, false
	}
	payload := b[Overhead : Overhead+int(ln)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, 0, false
	}
	data = make([]byte, ln)
	copy(data, payload)
	return seq, data, Overhead + int(ln), true
}

// Size returns the total byte length of the frame at the front of b without
// validating its CRC — the cheap "can a complete frame be here" probe stream
// readers use to decide whether to read more bytes.
func Size(b []byte) (int, bool) {
	if len(b) < Overhead {
		return 0, false
	}
	n := binary.BigEndian.Uint32(b[8:12])
	total := uint64(Overhead) + uint64(n)
	if total > uint64(len(b)) {
		return 0, false
	}
	return int(total), true
}
