// Package audit implements MedVault's tamper-evident audit trail.
//
// HIPAA requires recording every access to EPHI, and the paper requires that
// the log itself be trustworthy: an insider who reads or alters a record must
// not be able to scrub the evidence. Three mechanisms compose:
//
//  1. Every event carries the hash of its predecessor (a hash chain), so
//     deleting or reordering events breaks the chain.
//  2. Every event carries an HMAC under a key derived from the vault master
//     secret, so an insider without the key cannot re-forge the chain after
//     editing it.
//  3. Checkpoints — Ed25519-signed statements of (sequence, chain head) — are
//     emitted periodically and can be stored off-system; verification against
//     any remembered checkpoint detects wholesale log replacement.
//
// Events are persisted to an append-only blockstore; an in-memory tail index
// serves queries by actor, record, and time range.
package audit

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"medvault/internal/blockstore"
	"medvault/internal/obs"
	"medvault/internal/vcrypto"
)

// Audit instrumentation: event volume by outcome and the time each append
// (hash, MAC, persist) costs the operation that triggered it.
var (
	metEvents = func(outcome Outcome) *obs.Counter {
		return obs.Default.Counter("medvault_audit_events_total",
			"Audit events appended, by outcome.", obs.L("outcome", string(outcome)))
	}
	metAppendSeconds = obs.Default.Histogram("medvault_audit_append_seconds",
		"Latency of one audit-chain append (hash, MAC, persist).", obs.LatencyBuckets)
)

// Action classifies an audited operation.
type Action string

// Audited actions. The set covers the lifecycle events the regulations call
// out: access and modification (HIPAA Privacy Rule), disposition and media
// movement (§164.310(d)(2)), and migration/custody (accountability).
const (
	ActionCreate     Action = "create"
	ActionRead       Action = "read"
	ActionCorrect    Action = "correct"
	ActionSearch     Action = "search"
	ActionDelete     Action = "delete" // crypto-shred at end of retention
	ActionMigrateOut Action = "migrate-out"
	ActionMigrateIn  Action = "migrate-in"
	ActionBackup     Action = "backup"
	ActionRestore    Action = "restore"
	ActionVerify     Action = "verify"
	ActionBreakGlass Action = "break-glass"
	ActionPolicy     Action = "policy"
)

// Outcome records whether the attempted action was permitted.
type Outcome string

// Outcomes. Denied attempts are audited too: a pattern of denials is exactly
// what a compliance officer investigates.
const (
	OutcomeAllowed Outcome = "allowed"
	OutcomeDenied  Outcome = "denied"
	OutcomeError   Outcome = "error"
)

// Event is one audit record.
type Event struct {
	Seq       uint64    // position in the chain, starting at 0
	Timestamp time.Time // UTC
	Actor     string    // authenticated principal
	Action    Action
	Record    string // affected record ID ("" for store-level events)
	Version   uint64 // affected version (0 when not applicable)
	Outcome   Outcome
	Detail    string   // free-form context (never PHI; callers must not put PHI here)
	Trace     string   // trace ID of the operation that produced the event ("" when untraced)
	PrevHash  [32]byte // hash of the previous event (zero for Seq 0)
	Hash      [32]byte // hash of this event's content || PrevHash
	MAC       []byte   // HMAC over Hash under the audit key
}

// Errors returned by the package.
var (
	// ErrChainBroken indicates the hash chain does not link.
	ErrChainBroken = errors.New("audit: hash chain broken")
	// ErrBadMAC indicates an event MAC failed: the event was forged or the
	// log rewritten by someone without the audit key.
	ErrBadMAC = errors.New("audit: event MAC invalid")
	// ErrCheckpointMismatch indicates the log disagrees with a remembered
	// signed checkpoint.
	ErrCheckpointMismatch = errors.New("audit: checkpoint mismatch")
	// ErrCorrupt indicates an undecodable persisted event.
	ErrCorrupt = errors.New("audit: corrupt event encoding")
)

// Checkpoint is a signed commitment to the chain state after Seq events.
type Checkpoint struct {
	Seq       uint64   // number of events committed
	Head      [32]byte // hash of the last committed event
	Timestamp time.Time
	Signature []byte
}

func checkpointBytes(seq uint64, head [32]byte, ts time.Time) []byte {
	var buf bytes.Buffer
	buf.WriteString("medvault/audit-checkpoint/v1\x00")
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	buf.Write(b[:])
	buf.Write(head[:])
	binary.BigEndian.PutUint64(b[:], uint64(ts.UnixNano()))
	buf.Write(b[:])
	return buf.Bytes()
}

// Verify checks the checkpoint signature.
func (c Checkpoint) Verify(pub vcrypto.PublicKey) error {
	if err := pub.Verify(checkpointBytes(c.Seq, c.Head, c.Timestamp), c.Signature); err != nil {
		return fmt.Errorf("audit: checkpoint signature: %w", err)
	}
	return nil
}

// Log is a tamper-evident audit log. Safe for concurrent use.
type Log struct {
	mu       sync.RWMutex
	store    blockstore.Store
	macKey   vcrypto.Key
	signer   *vcrypto.Signer
	now      func() time.Time
	events   []Event // in-memory mirror for queries and verification
	lastHash [32]byte
	every    int // checkpoint interval in events (0 = manual only)
	cps      []Checkpoint
}

// Config configures a Log.
type Config struct {
	Store              blockstore.Store // persistence; required
	MACKey             vcrypto.Key      // audit MAC key (derive from master)
	Signer             *vcrypto.Signer  // checkpoint signer; required
	Now                func() time.Time // nil means time.Now
	CheckpointInterval int              // events per automatic checkpoint; 0 disables
}

// Open creates a Log over cfg.Store, replaying and verifying any persisted
// events. Opening fails if the persisted chain does not verify — a vault
// must not start on top of a tampered audit trail.
func Open(cfg Config) (*Log, error) {
	if cfg.Store == nil {
		return nil, errors.New("audit: Config.Store is required")
	}
	if cfg.Signer == nil {
		return nil, errors.New("audit: Config.Signer is required")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	l := &Log{
		store:  cfg.Store,
		macKey: cfg.MACKey,
		signer: cfg.Signer,
		now:    now,
		every:  cfg.CheckpointInterval,
	}
	err := cfg.Store.Scan(func(_ blockstore.Ref, data []byte) error {
		e, err := decodeEvent(data)
		if err != nil {
			return err
		}
		if err := l.checkLink(e); err != nil {
			return err
		}
		l.events = append(l.events, e)
		l.lastHash = e.Hash
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("audit: replaying persisted log: %w", err)
	}
	return l, nil
}

// checkLink validates e against the current tail (chain, hash, MAC).
func (l *Log) checkLink(e Event) error {
	if e.Seq != uint64(len(l.events)) {
		return fmt.Errorf("%w: sequence %d, want %d", ErrChainBroken, e.Seq, len(l.events))
	}
	if e.PrevHash != l.lastHash {
		return fmt.Errorf("%w: prev-hash mismatch at seq %d", ErrChainBroken, e.Seq)
	}
	if eventHash(e) != e.Hash {
		return fmt.Errorf("%w: content hash mismatch at seq %d", ErrChainBroken, e.Seq)
	}
	if !vcrypto.VerifyMAC(l.macKey, e.Hash[:], e.MAC) {
		return fmt.Errorf("%w: at seq %d", ErrBadMAC, e.Seq)
	}
	return nil
}

// Append records an event and returns it with chain fields filled in.
// Timestamp, Seq, PrevHash, Hash, and MAC are assigned by the log; caller
// fields in those positions are ignored.
func (l *Log) Append(e Event) (Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(e)
}

// AppendCtx is Append stamping the event with the trace ID carried by ctx
// (unless the caller set one) and recording an "audit.append" span. The trace
// ID is hashed and MACed with the rest of the event, so the correlation
// between an audit entry and its /debug/traces trace is itself tamper-evident.
func (l *Log) AppendCtx(ctx context.Context, e Event) (Event, error) {
	_, sp := obs.StartSpan(ctx, "audit.append")
	if e.Trace == "" {
		e.Trace = obs.TraceID(ctx)
	}
	out, err := l.Append(e)
	sp.End(err)
	return out, err
}

// AppendAllCtx is AppendAll with the same trace stamping and span recording
// as AppendCtx, covering the whole adjacent batch with one span.
func (l *Log) AppendAllCtx(ctx context.Context, events []Event) (Event, error) {
	_, sp := obs.StartSpan(ctx, "audit.append")
	id := obs.TraceID(ctx)
	for i := range events {
		if events[i].Trace == "" {
			events[i].Trace = id
		}
	}
	out, err := l.AppendAll(events)
	sp.End(err)
	return out, err
}

// AppendAll records the events consecutively under one lock acquisition:
// they occupy adjacent sequence numbers with nothing interleaved. Callers
// whose review logic pairs events by adjacency (an access decision and its
// break-glass flag) must use this instead of consecutive Appends, which
// concurrent operations can interleave. It returns the last event appended.
func (l *Log) AppendAll(events []Event) (Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var last Event
	for _, e := range events {
		var err error
		if last, err = l.appendLocked(e); err != nil {
			return Event{}, err
		}
	}
	return last, nil
}

func (l *Log) appendLocked(e Event) (Event, error) {
	start := time.Now()
	defer metAppendSeconds.ObserveSince(start)
	e.Seq = uint64(len(l.events))
	e.Timestamp = l.now().UTC()
	e.PrevHash = l.lastHash
	e.Hash = eventHash(e)
	e.MAC = vcrypto.MAC(l.macKey, e.Hash[:])
	if _, err := l.store.Append(encodeEvent(e)); err != nil {
		return Event{}, fmt.Errorf("audit: persisting event %d: %w", e.Seq, err)
	}
	l.events = append(l.events, e)
	l.lastHash = e.Hash
	metEvents(e.Outcome).Inc()
	if l.every > 0 && len(l.events)%l.every == 0 {
		l.cps = append(l.cps, l.checkpointLocked())
	}
	return e, nil
}

// Len returns the number of events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Checkpoint signs and returns a commitment to the current chain state.
func (l *Log) Checkpoint() Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := l.checkpointLocked()
	l.cps = append(l.cps, cp)
	return cp
}

func (l *Log) checkpointLocked() Checkpoint {
	ts := l.now().UTC()
	seq := uint64(len(l.events))
	return Checkpoint{
		Seq:       seq,
		Head:      l.lastHash,
		Timestamp: ts,
		Signature: l.signer.Sign(checkpointBytes(seq, l.lastHash, ts)),
	}
}

// Checkpoints returns all checkpoints issued so far.
func (l *Log) Checkpoints() []Checkpoint {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Checkpoint(nil), l.cps...)
}

// Verify walks the whole chain: hash links, content hashes, and MACs.
// It returns the number of verified events.
func (l *Log) Verify() (int, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev [32]byte
	for i, e := range l.events {
		if e.Seq != uint64(i) {
			return i, fmt.Errorf("%w: sequence %d, want %d", ErrChainBroken, e.Seq, i)
		}
		if e.PrevHash != prev {
			return i, fmt.Errorf("%w: prev-hash mismatch at seq %d", ErrChainBroken, i)
		}
		if eventHash(e) != e.Hash {
			return i, fmt.Errorf("%w: content hash mismatch at seq %d", ErrChainBroken, i)
		}
		if !vcrypto.VerifyMAC(l.macKey, e.Hash[:], e.MAC) {
			return i, fmt.Errorf("%w: at seq %d", ErrBadMAC, i)
		}
		prev = e.Hash
	}
	return len(l.events), nil
}

// VerifyAgainst verifies the chain and additionally checks it commits to the
// remembered checkpoint: the event at cp.Seq-1 must hash to cp.Head. This is
// the defence against wholesale log replacement with a freshly built chain.
func (l *Log) VerifyAgainst(cp Checkpoint, pub vcrypto.PublicKey) error {
	if err := cp.Verify(pub); err != nil {
		return err
	}
	if _, err := l.Verify(); err != nil {
		return err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if cp.Seq > uint64(len(l.events)) {
		return fmt.Errorf("%w: checkpoint covers %d events, log has %d", ErrCheckpointMismatch, cp.Seq, len(l.events))
	}
	if cp.Seq == 0 {
		return nil
	}
	if l.events[cp.Seq-1].Hash != cp.Head {
		return fmt.Errorf("%w: head hash differs at seq %d", ErrCheckpointMismatch, cp.Seq-1)
	}
	return nil
}

// Query filters events. Zero-valued fields match everything.
type Query struct {
	Actor  string
	Record string
	Action Action
	// From/Until bound Timestamp inclusively; zero times are open ends.
	From, Until time.Time
	// DeniedOnly restricts to Outcome == OutcomeDenied.
	DeniedOnly bool
}

// Search returns events matching q in chain order.
func (l *Log) Search(q Query) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if q.Actor != "" && e.Actor != q.Actor {
			continue
		}
		if q.Record != "" && e.Record != q.Record {
			continue
		}
		if q.Action != "" && e.Action != q.Action {
			continue
		}
		if !q.From.IsZero() && e.Timestamp.Before(q.From) {
			continue
		}
		if !q.Until.IsZero() && e.Timestamp.After(q.Until) {
			continue
		}
		if q.DeniedOnly && e.Outcome != OutcomeDenied {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Events returns a copy of the full event list in chain order.
func (l *Log) Events() []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Event(nil), l.events...)
}

// eventHash hashes the event's content and PrevHash (not MAC). The domain
// string is versioned with the field set: v2 added Trace, so a v1 chain
// cannot be passed off as v2 (or vice versa) by zero-filling the new field.
func eventHash(e Event) [32]byte {
	var buf bytes.Buffer
	buf.WriteString("medvault/audit-event/v2\x00")
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], e.Seq)
	buf.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(e.Timestamp.UnixNano()))
	buf.Write(b[:])
	// Length-prefix strings so field boundaries cannot be confused.
	for _, s := range []string{e.Actor, string(e.Action), e.Record, string(e.Outcome), e.Detail, e.Trace} {
		binary.BigEndian.PutUint32(b[:4], uint32(len(s)))
		buf.Write(b[:4])
		buf.WriteString(s)
	}
	binary.BigEndian.PutUint64(b[:], e.Version)
	buf.Write(b[:])
	buf.Write(e.PrevHash[:])
	return vcrypto.Hash(buf.Bytes())
}

// String renders an event as one log line.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "#%d %s %s %s", e.Seq, e.Timestamp.Format(time.RFC3339), e.Actor, e.Action)
	if e.Record != "" {
		fmt.Fprintf(&sb, " %s", e.Record)
		if e.Version != 0 {
			fmt.Fprintf(&sb, "/v%d", e.Version)
		}
	}
	fmt.Fprintf(&sb, " [%s]", e.Outcome)
	if e.Detail != "" {
		fmt.Fprintf(&sb, " %s", e.Detail)
	}
	return sb.String()
}
