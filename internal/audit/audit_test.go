package audit

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"medvault/internal/blockstore"
	"medvault/internal/vcrypto"
)

func newTestLog(t *testing.T, store blockstore.Store) (*Log, *vcrypto.Signer, vcrypto.Key) {
	t.Helper()
	signer, err := vcrypto.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	key, err := vcrypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	if store == nil {
		store = blockstore.NewMemory(0)
	}
	l, err := Open(Config{Store: store, MACKey: key, Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	return l, signer, key
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := l.Append(Event{
			Actor:   fmt.Sprintf("dr-%d", i%3),
			Action:  ActionRead,
			Record:  fmt.Sprintf("patient-%d", i%5),
			Version: uint64(i%2 + 1),
			Outcome: OutcomeAllowed,
			Detail:  "routine",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendBuildsChain(t *testing.T) {
	l, _, _ := newTestLog(t, nil)
	appendN(t, l, 10)
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	n, err := l.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if n != 10 {
		t.Errorf("verified %d events, want 10", n)
	}
	events := l.Events()
	for i := 1; i < len(events); i++ {
		if events[i].PrevHash != events[i-1].Hash {
			t.Fatalf("chain link broken at %d", i)
		}
	}
}

func TestVerifyDetectsContentTampering(t *testing.T) {
	l, _, _ := newTestLog(t, nil)
	appendN(t, l, 20)
	// Tamper with an event in the in-memory mirror (models an insider
	// editing the running log's state).
	l.events[7].Actor = "nobody"
	if _, err := l.Verify(); !errors.Is(err, ErrChainBroken) {
		t.Errorf("content tamper: %v, want ErrChainBroken", err)
	}
}

func TestVerifyDetectsRechainedForgeryWithoutKey(t *testing.T) {
	l, _, _ := newTestLog(t, nil)
	appendN(t, l, 10)
	// An insider who edits event 3 and recomputes hashes downstream still
	// lacks the MAC key: Verify must fail with ErrBadMAC at the first
	// re-forged event.
	l.events[3].Detail = "scrubbed"
	for i := 3; i < len(l.events); i++ {
		if i > 3 {
			l.events[i].PrevHash = l.events[i-1].Hash
		}
		l.events[i].Hash = eventHash(l.events[i])
		// MAC left stale: attacker cannot recompute it.
	}
	if _, err := l.Verify(); !errors.Is(err, ErrBadMAC) {
		t.Errorf("re-chained forgery: %v, want ErrBadMAC", err)
	}
}

func TestVerifyDetectsTruncation(t *testing.T) {
	l, signer, _ := newTestLog(t, nil)
	appendN(t, l, 10)
	cp := l.Checkpoint()
	// Truncate the tail: chain still verifies internally, but the
	// checkpoint exposes the missing events.
	l.events = l.events[:5]
	l.lastHash = l.events[4].Hash
	if _, err := l.Verify(); err != nil {
		t.Fatalf("truncated chain should self-verify: %v", err)
	}
	if err := l.VerifyAgainst(cp, signer.Public()); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("truncation vs checkpoint: %v, want ErrCheckpointMismatch", err)
	}
}

func TestVerifyAgainstHonestLog(t *testing.T) {
	l, signer, _ := newTestLog(t, nil)
	appendN(t, l, 8)
	cp := l.Checkpoint()
	appendN(t, l, 7) // keep growing after the checkpoint
	if err := l.VerifyAgainst(cp, signer.Public()); err != nil {
		t.Errorf("honest log failed checkpoint verification: %v", err)
	}
	// Zero checkpoint is always satisfied by a verifying log.
	l2, s2, _ := newTestLog(t, nil)
	if err := l2.VerifyAgainst(l2.Checkpoint(), s2.Public()); err != nil {
		t.Errorf("empty checkpoint: %v", err)
	}
}

func TestVerifyAgainstWholesaleReplacement(t *testing.T) {
	l, signer, key := newTestLog(t, nil)
	appendN(t, l, 10)
	cp := l.Checkpoint()

	// Attacker rebuilds a whole fresh log (even with the MAC key — say a
	// compromised process) but cannot sign checkpoints. The remembered
	// checkpoint exposes the replacement.
	store2 := blockstore.NewMemory(0)
	evilSigner, _ := vcrypto.NewSigner()
	evil, err := Open(Config{Store: store2, MACKey: key, Signer: evilSigner})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := evil.Append(Event{Actor: "ghost", Action: ActionRead, Outcome: OutcomeAllowed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := evil.VerifyAgainst(cp, signer.Public()); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("replaced log: %v, want ErrCheckpointMismatch", err)
	}
	// And a checkpoint forged by the evil signer fails signature check.
	forged := evil.Checkpoint()
	if err := evil.VerifyAgainst(forged, signer.Public()); !errors.Is(err, vcrypto.ErrBadSignature) {
		t.Errorf("forged checkpoint: %v, want ErrBadSignature", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	store := blockstore.NewMemory(0)
	l, signer, key := newTestLog(t, store)
	appendN(t, l, 25)
	want := l.Events()

	re, err := Open(Config{Store: store, MACKey: key, Signer: signer})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Len() != 25 {
		t.Fatalf("reopened Len = %d, want 25", re.Len())
	}
	got := re.Events()
	for i := range want {
		if got[i].Hash != want[i].Hash || got[i].Actor != want[i].Actor {
			t.Fatalf("event %d differs after reopen", i)
		}
	}
	if _, err := re.Verify(); err != nil {
		t.Errorf("reopened log fails verify: %v", err)
	}
	// Appends continue the chain.
	if _, err := re.Append(Event{Actor: "x", Action: ActionRead, Outcome: OutcomeAllowed}); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Verify(); err != nil {
		t.Errorf("verify after continued append: %v", err)
	}
}

func TestOpenRejectsTamperedPersistence(t *testing.T) {
	store := blockstore.NewMemory(0)
	l, signer, key := newTestLog(t, store)
	appendN(t, l, 5)

	// Corrupt the persisted bytes of one event via raw segment access, with
	// a valid CRC re-wrap being impossible — so instead rebuild a store with
	// one event's payload altered but CRC fixed (insider with disk access).
	var payloads [][]byte
	if err := store.Scan(func(_ blockstore.Ref, data []byte) error {
		payloads = append(payloads, append([]byte(nil), data...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e, err := decodeEvent(payloads[2])
	if err != nil {
		t.Fatal(err)
	}
	e.Actor = "tampered"
	payloads[2] = encodeEvent(e)

	evil := blockstore.NewMemory(0)
	for _, p := range payloads {
		if _, err := evil.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(Config{Store: evil, MACKey: key, Signer: signer}); !errors.Is(err, ErrChainBroken) {
		t.Errorf("tampered persistence accepted: %v", err)
	}
}

func TestSearchFilters(t *testing.T) {
	l, _, _ := newTestLog(t, nil)
	base := time.Now()
	appendN(t, l, 30)
	if _, err := l.Append(Event{Actor: "intruder", Action: ActionRead, Record: "patient-1", Outcome: OutcomeDenied}); err != nil {
		t.Fatal(err)
	}

	if got := l.Search(Query{Actor: "dr-1"}); len(got) != 10 {
		t.Errorf("actor filter: %d events, want 10", len(got))
	}
	if got := l.Search(Query{Record: "patient-1"}); len(got) != 7 {
		t.Errorf("record filter: %d events, want 7", len(got))
	}
	if got := l.Search(Query{DeniedOnly: true}); len(got) != 1 || got[0].Actor != "intruder" {
		t.Errorf("denied filter: %v", got)
	}
	if got := l.Search(Query{Action: ActionCorrect}); len(got) != 0 {
		t.Errorf("action filter: %d events, want 0", len(got))
	}
	if got := l.Search(Query{Until: base.Add(-time.Hour)}); len(got) != 0 {
		t.Errorf("until filter: %d events, want 0", len(got))
	}
	if got := l.Search(Query{From: base.Add(-time.Hour)}); len(got) != 31 {
		t.Errorf("from filter: %d events, want 31", len(got))
	}
}

func TestAutomaticCheckpoints(t *testing.T) {
	store := blockstore.NewMemory(0)
	signer, _ := vcrypto.NewSigner()
	key, _ := vcrypto.NewKey()
	l, err := Open(Config{Store: store, MACKey: key, Signer: signer, CheckpointInterval: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		if _, err := l.Append(Event{Actor: "a", Action: ActionRead, Outcome: OutcomeAllowed}); err != nil {
			t.Fatal(err)
		}
	}
	cps := l.Checkpoints()
	if len(cps) != 3 {
		t.Fatalf("got %d automatic checkpoints, want 3", len(cps))
	}
	for _, cp := range cps {
		if err := l.VerifyAgainst(cp, signer.Public()); err != nil {
			t.Errorf("checkpoint at seq %d: %v", cp.Seq, err)
		}
	}
}

func TestEventCodecRoundTripProperty(t *testing.T) {
	f := func(seq uint64, actor, record, detail string, version uint64, prev, hash [32]byte, mac []byte) bool {
		e := Event{
			Seq:       seq,
			Timestamp: time.Unix(0, 1234567890).UTC(),
			Actor:     actor,
			Action:    ActionCorrect,
			Record:    record,
			Version:   version,
			Outcome:   OutcomeAllowed,
			Detail:    detail,
			PrevHash:  prev,
			Hash:      hash,
			MAC:       mac,
		}
		got, err := decodeEvent(encodeEvent(e))
		if err != nil {
			return false
		}
		return got.Seq == e.Seq && got.Actor == e.Actor && got.Record == e.Record &&
			got.Detail == e.Detail && got.Version == e.Version && got.PrevHash == e.PrevHash &&
			got.Hash == e.Hash && string(got.MAC) == string(e.MAC) && got.Timestamp.Equal(e.Timestamp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeEventRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {0}, {0, 2}, append(encodeEvent(Event{}), 0xFF)} {
		if _, err := decodeEvent(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("garbage %v accepted: %v", b, err)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 3, Actor: "dr-a", Action: ActionCorrect, Record: "p1", Version: 2, Outcome: OutcomeAllowed, Detail: "typo fix"}
	s := e.String()
	for _, want := range []string{"#3", "dr-a", "correct", "p1/v2", "[allowed]", "typo fix"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestInjectedClock(t *testing.T) {
	store := blockstore.NewMemory(0)
	signer, _ := vcrypto.NewSigner()
	key, _ := vcrypto.NewKey()
	fixed := time.Date(2040, 1, 2, 3, 4, 5, 0, time.UTC)
	l, err := Open(Config{Store: store, MACKey: key, Signer: signer, Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	e, err := l.Append(Event{Actor: "a", Action: ActionRead, Outcome: OutcomeAllowed})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Timestamp.Equal(fixed) {
		t.Errorf("timestamp = %v, want %v", e.Timestamp, fixed)
	}
}
