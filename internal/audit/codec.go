package audit

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Persisted event layout (all integers big-endian):
//
//	u16 version | u64 seq | i64 unixNano | str actor | str action |
//	str record | u64 recVersion | str outcome | str detail | str trace |
//	32B prevHash | 32B hash | str mac
//
// where str is u32 length || bytes. Version 2 added the trace field; the
// codec is strict (only the current version decodes) because the event hash
// domain is versioned in lockstep — a v1 chain would fail verification under
// v2 hashing anyway, so decoding it would only defer the error.
const codecVersion = 2

func encodeEvent(e Event) []byte {
	var buf bytes.Buffer
	writeU16(&buf, codecVersion)
	writeU64(&buf, e.Seq)
	writeU64(&buf, uint64(e.Timestamp.UnixNano()))
	writeStr(&buf, e.Actor)
	writeStr(&buf, string(e.Action))
	writeStr(&buf, e.Record)
	writeU64(&buf, e.Version)
	writeStr(&buf, string(e.Outcome))
	writeStr(&buf, e.Detail)
	writeStr(&buf, e.Trace)
	buf.Write(e.PrevHash[:])
	buf.Write(e.Hash[:])
	writeBytes(&buf, e.MAC)
	return buf.Bytes()
}

func decodeEvent(data []byte) (Event, error) {
	r := bytes.NewReader(data)
	ver, err := readU16(r)
	if err != nil || ver != codecVersion {
		return Event{}, fmt.Errorf("%w: version %d", ErrCorrupt, ver)
	}
	var e Event
	fields := []func() error{
		func() error { e.Seq, err = readU64(r); return err },
		func() error {
			ns, err := readU64(r)
			e.Timestamp = time.Unix(0, int64(ns)).UTC()
			return err
		},
		func() error { s, err := readStr(r); e.Actor = s; return err },
		func() error { s, err := readStr(r); e.Action = Action(s); return err },
		func() error { s, err := readStr(r); e.Record = s; return err },
		func() error { e.Version, err = readU64(r); return err },
		func() error { s, err := readStr(r); e.Outcome = Outcome(s); return err },
		func() error { s, err := readStr(r); e.Detail = s; return err },
		func() error { s, err := readStr(r); e.Trace = s; return err },
		func() error { _, err := io.ReadFull(r, e.PrevHash[:]); return err },
		func() error { _, err := io.ReadFull(r, e.Hash[:]); return err },
		func() error { b, err := readBytesField(r); e.MAC = b; return err },
	}
	for _, f := range fields {
		if err := f(); err != nil {
			return Event{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if r.Len() != 0 {
		return Event{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return e, nil
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeStr(buf *bytes.Buffer, s string) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(s)))
	buf.Write(b[:])
	buf.WriteString(s)
}

func writeBytes(buf *bytes.Buffer, p []byte) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(p)))
	buf.Write(b[:])
	buf.Write(p)
}

func readU16(r *bytes.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

func readU64(r *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func readStr(r *bytes.Reader) (string, error) {
	b, err := readBytesField(r)
	return string(b), err
}

func readBytesField(r *bytes.Reader) ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if int(n) > r.Len() {
		return nil, fmt.Errorf("field length %d exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
