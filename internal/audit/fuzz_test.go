package audit

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeEvent hardens the audit-event decoder against arbitrary
// persisted bytes: no panics, and successful decodes re-encode canonically.
func FuzzDecodeEvent(f *testing.F) {
	f.Add(encodeEvent(Event{
		Seq: 3, Timestamp: time.Unix(0, 42).UTC(), Actor: "dr-a",
		Action: ActionRead, Record: "r1", Version: 2,
		Outcome: OutcomeAllowed, Detail: "d", MAC: []byte{1, 2, 3},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEvent(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeEvent(e), data) {
			t.Fatal("decode/encode not canonical")
		}
	})
}
