package provenance

import (
	"errors"
	"testing"
	"time"

	"medvault/internal/blockstore"
	"medvault/internal/vcrypto"
)

func newTracker(t *testing.T, system string, store blockstore.Store) (*Tracker, *vcrypto.Signer) {
	t.Helper()
	signer, err := vcrypto.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	if store == nil {
		store = blockstore.NewMemory(0)
	}
	tr, err := Open(Config{Store: store, Signer: signer, System: system})
	if err != nil {
		t.Fatal(err)
	}
	return tr, signer
}

func TestRecordBuildsChain(t *testing.T) {
	tr, _ := newTracker(t, "hospital-a", nil)
	h1 := vcrypto.Hash([]byte("v1"))
	h2 := vcrypto.Hash([]byte("v2"))

	e1, err := tr.Record("patient-1", EventCreated, "dr-jones", h1, "")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Index != 0 || e1.System != "hospital-a" || e1.PrevHash != ([32]byte{}) {
		t.Errorf("genesis event malformed: %+v", e1)
	}
	e2, err := tr.Record("patient-1", EventCorrected, "dr-smith", h2, "")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Index != 1 || e2.PrevHash != e1.Hash {
		t.Errorf("chain linkage broken: %+v", e2)
	}
	if err := tr.Verify("patient-1", nil); err != nil {
		t.Errorf("Verify: %v", err)
	}
	chain, err := tr.Chain("patient-1")
	if err != nil || len(chain) != 2 {
		t.Fatalf("Chain: %d events, err %v", len(chain), err)
	}
}

func TestChainsAreIndependentPerRecord(t *testing.T) {
	tr, _ := newTracker(t, "sys", nil)
	for i := 0; i < 3; i++ {
		if _, err := tr.Record("a", EventCreated, "x", [32]byte{}, ""); i == 0 && err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Record("b", EventCreated, "x", [32]byte{}, ""); err != nil {
		t.Fatal(err)
	}
	chainA, _ := tr.Chain("a")
	chainB, _ := tr.Chain("b")
	if len(chainA) != 3 || len(chainB) != 1 {
		t.Errorf("chain lengths: a=%d b=%d", len(chainA), len(chainB))
	}
	if chainB[0].Index != 0 {
		t.Error("record b chain did not start at index 0")
	}
	if len(tr.Records()) != 2 {
		t.Errorf("Records() = %v", tr.Records())
	}
}

func TestUnknownRecord(t *testing.T) {
	tr, _ := newTracker(t, "sys", nil)
	if _, err := tr.Chain("ghost"); !errors.Is(err, ErrUnknownRecord) {
		t.Errorf("Chain: %v", err)
	}
	if err := tr.Verify("ghost", nil); !errors.Is(err, ErrUnknownRecord) {
		t.Errorf("Verify: %v", err)
	}
	if _, err := tr.Custodians("ghost"); !errors.Is(err, ErrUnknownRecord) {
		t.Errorf("Custodians: %v", err)
	}
}

func TestAdoptMigratedHistory(t *testing.T) {
	source, _ := newTracker(t, "hospital-a", nil)
	h := vcrypto.Hash([]byte("content"))
	if _, err := source.Record("p1", EventCreated, "dr-a", h, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := source.Record("p1", EventMigratedOut, "admin-a", h, "hospital-b"); err != nil {
		t.Fatal(err)
	}
	history, err := source.Chain("p1")
	if err != nil {
		t.Fatal(err)
	}

	target, _ := newTracker(t, "hospital-b", nil)
	if err := target.Adopt(history); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if _, err := target.Record("p1", EventMigratedIn, "admin-b", h, "hospital-a"); err != nil {
		t.Fatal(err)
	}
	if err := target.Verify("p1", nil); err != nil {
		t.Errorf("cross-system chain failed verification: %v", err)
	}
	custodians, err := target.Custodians("p1")
	if err != nil {
		t.Fatal(err)
	}
	if len(custodians) != 2 || custodians[0] != "hospital-a" || custodians[1] != "hospital-b" {
		t.Errorf("custodians = %v", custodians)
	}
}

func TestAdoptRejectsTamperedHistory(t *testing.T) {
	source, _ := newTracker(t, "a", nil)
	h := vcrypto.Hash([]byte("x"))
	source.Record("p1", EventCreated, "dr", h, "")
	source.Record("p1", EventCorrected, "dr", h, "")
	history, _ := source.Chain("p1")

	// Tamper with the actor of the first event.
	history[0].Actor = "someone-else"
	target, _ := newTracker(t, "b", nil)
	if err := target.Adopt(history); !errors.Is(err, ErrChainBroken) {
		t.Errorf("tampered history adopted: %v", err)
	}

	// Re-hash after tampering: the signature check must now fail.
	history2, _ := source.Chain("p1")
	history2[0].Actor = "someone-else"
	history2[0].Hash = eventHash(history2[0])
	history2[1].PrevHash = history2[0].Hash
	history2[1].Hash = eventHash(history2[1])
	target2, _ := newTracker(t, "b", nil)
	if err := target2.Adopt(history2); !errors.Is(err, ErrBadSignature) {
		t.Errorf("re-hashed forged history adopted: %v", err)
	}
}

func TestVerifyTrustedSigners(t *testing.T) {
	tr, signer := newTracker(t, "a", nil)
	tr.Record("p1", EventCreated, "dr", [32]byte{}, "")
	trusted := map[string]bool{signer.Public().String(): true}
	if err := tr.Verify("p1", trusted); err != nil {
		t.Errorf("trusted signer rejected: %v", err)
	}
	other, _ := vcrypto.NewSigner()
	onlyOther := map[string]bool{other.Public().String(): true}
	if err := tr.Verify("p1", onlyOther); !errors.Is(err, ErrBadSignature) {
		t.Errorf("untrusted signer accepted: %v", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	store := blockstore.NewMemory(0)
	signer, err := vcrypto.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Open(Config{Store: store, Signer: signer, System: "sys"})
	if err != nil {
		t.Fatal(err)
	}
	h := vcrypto.Hash([]byte("v"))
	tr.Record("p1", EventCreated, "dr", h, "")
	tr.Record("p1", EventCorrected, "dr", h, "")
	tr.Record("p2", EventCreated, "dr", h, "")

	re, err := Open(Config{Store: store, Signer: signer, System: "sys"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if n, err := re.VerifyAll(nil); err != nil || n != 2 {
		t.Errorf("VerifyAll after reopen: n=%d err=%v", n, err)
	}
	chain, err := re.Chain("p1")
	if err != nil || len(chain) != 2 {
		t.Fatalf("reopened chain: %d events, %v", len(chain), err)
	}
	// Chain continues correctly after reopen.
	if _, err := re.Record("p1", EventBackedUp, "op", h, ""); err != nil {
		t.Fatal(err)
	}
	if err := re.Verify("p1", nil); err != nil {
		t.Errorf("verify after continued append: %v", err)
	}
}

func TestOpenRejectsTamperedPersistence(t *testing.T) {
	store := blockstore.NewMemory(0)
	signer, _ := vcrypto.NewSigner()
	tr, err := Open(Config{Store: store, Signer: signer, System: "sys"})
	if err != nil {
		t.Fatal(err)
	}
	tr.Record("p1", EventCreated, "dr", [32]byte{}, "")

	// Rebuild a store with the event's actor edited (hash left stale).
	var payloads [][]byte
	store.Scan(func(_ blockstore.Ref, data []byte) error {
		payloads = append(payloads, append([]byte(nil), data...))
		return nil
	})
	e, err := decodeEvent(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	e.Actor = "forged"
	evil := blockstore.NewMemory(0)
	evil.Append(encodeEvent(e))
	if _, err := Open(Config{Store: evil, Signer: signer, System: "sys"}); !errors.Is(err, ErrChainBroken) {
		t.Errorf("tampered persistence accepted: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	signer, _ := vcrypto.NewSigner()
	e := Event{
		Record:      "rec-1",
		Index:       7,
		Type:        EventMigratedOut,
		Timestamp:   time.Unix(0, 99).UTC(),
		Actor:       "admin",
		System:      "a",
		Peer:        "b",
		ContentHash: vcrypto.Hash([]byte("c")),
		PrevHash:    vcrypto.Hash([]byte("p")),
		SignerKey:   signer.Public(),
	}
	e.Hash = eventHash(e)
	e.Signature = signer.Sign(e.Hash[:])
	got, err := decodeEvent(encodeEvent(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.Record != e.Record || got.Index != e.Index || got.Type != e.Type ||
		!got.Timestamp.Equal(e.Timestamp) || got.Actor != e.Actor ||
		got.System != e.System || got.Peer != e.Peer ||
		got.ContentHash != e.ContentHash || got.Hash != e.Hash ||
		got.SignerKey.String() != e.SignerKey.String() {
		t.Errorf("round trip mismatch: %+v vs %+v", got, e)
	}
	if _, err := decodeEvent([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("garbage accepted: %v", err)
	}
}

func TestInjectedClock(t *testing.T) {
	store := blockstore.NewMemory(0)
	signer, _ := vcrypto.NewSigner()
	fixed := time.Date(2050, 7, 1, 0, 0, 0, 0, time.UTC)
	tr, err := Open(Config{Store: store, Signer: signer, System: "sys", Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	e, err := tr.Record("p", EventCreated, "dr", [32]byte{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Timestamp.Equal(fixed) {
		t.Errorf("timestamp = %v, want %v", e.Timestamp, fixed)
	}
}
