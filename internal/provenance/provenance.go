// Package provenance implements chain-of-custody tracking for records.
//
// HIPAA §164.310(d)(2)(iii) requires "a record of the movements of hardware
// and electronic media and any person responsible therefore", and the paper
// singles out trustworthy provenance as the feature missing from every
// storage model it surveys. This package keeps, per record, a hash-linked and
// signed chain of custody events: creation, correction, migration out/in,
// backup, restore, and shredding. Each event names the responsible actor and
// system, commits to the record content hash at that moment, links to its
// predecessor, and is signed by the system that performed the action — so a
// record arriving from a migration carries a verifiable history spanning
// systems, signed by each custodian in turn.
package provenance

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"medvault/internal/blockstore"
	"medvault/internal/vcrypto"
)

// EventType classifies a custody event.
type EventType string

// Custody event types.
const (
	EventCreated     EventType = "created"
	EventCorrected   EventType = "corrected"
	EventMigratedIn  EventType = "migrated-in"
	EventMigratedOut EventType = "migrated-out"
	EventBackedUp    EventType = "backed-up"
	EventRestored    EventType = "restored"
	EventShredded    EventType = "shredded"
)

// Errors returned by the package.
var (
	// ErrChainBroken indicates a custody chain does not link or hash.
	ErrChainBroken = errors.New("provenance: custody chain broken")
	// ErrBadSignature indicates a custody event signature failed.
	ErrBadSignature = errors.New("provenance: custody signature invalid")
	// ErrUnknownRecord indicates no custody chain exists for the record.
	ErrUnknownRecord = errors.New("provenance: unknown record")
	// ErrCorrupt indicates an undecodable persisted event.
	ErrCorrupt = errors.New("provenance: corrupt event encoding")
)

// Event is one link in a record's custody chain.
type Event struct {
	Record      string // record ID this event belongs to
	Index       uint64 // position within the record's chain, from 0
	Type        EventType
	Timestamp   time.Time         // UTC
	Actor       string            // responsible person (HIPAA: "any person responsible")
	System      string            // system performing the action
	Peer        string            // counterpart system for migrations ("" otherwise)
	ContentHash [32]byte          // record content hash at this point (zero after shred)
	PrevHash    [32]byte          // hash of the previous event in this record's chain
	Hash        [32]byte          // hash of this event
	SignerKey   vcrypto.PublicKey // key of the signing system
	Signature   []byte            // over Hash
}

// eventHash hashes the event's signed content.
func eventHash(e Event) [32]byte {
	var buf bytes.Buffer
	buf.WriteString("medvault/provenance/v1\x00")
	var b [8]byte
	for _, s := range []string{e.Record, string(e.Type), e.Actor, e.System, e.Peer} {
		binary.BigEndian.PutUint32(b[:4], uint32(len(s)))
		buf.Write(b[:4])
		buf.WriteString(s)
	}
	binary.BigEndian.PutUint64(b[:], e.Index)
	buf.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(e.Timestamp.UnixNano()))
	buf.Write(b[:])
	buf.Write(e.ContentHash[:])
	buf.Write(e.PrevHash[:])
	return vcrypto.Hash(buf.Bytes())
}

// Tracker maintains custody chains for all records in one system.
// Safe for concurrent use.
type Tracker struct {
	mu     sync.RWMutex
	store  blockstore.Store
	signer *vcrypto.Signer
	system string
	now    func() time.Time
	chains map[string][]Event
}

// Config configures a Tracker.
type Config struct {
	Store  blockstore.Store // persistence; required
	Signer *vcrypto.Signer  // this system's signing identity; required
	System string           // this system's name, recorded in events
	Now    func() time.Time // nil means time.Now
}

// Open creates a Tracker, replaying persisted custody events. Chains are
// verified on load; a tampered chain prevents opening.
func Open(cfg Config) (*Tracker, error) {
	if cfg.Store == nil {
		return nil, errors.New("provenance: Config.Store is required")
	}
	if cfg.Signer == nil {
		return nil, errors.New("provenance: Config.Signer is required")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	tr := &Tracker{
		store:  cfg.Store,
		signer: cfg.Signer,
		system: cfg.System,
		now:    now,
		chains: make(map[string][]Event),
	}
	err := cfg.Store.Scan(func(_ blockstore.Ref, data []byte) error {
		e, err := decodeEvent(data)
		if err != nil {
			return err
		}
		if err := verifyLink(tr.chains[e.Record], e); err != nil {
			return err
		}
		tr.chains[e.Record] = append(tr.chains[e.Record], e)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("provenance: replaying custody log: %w", err)
	}
	return tr, nil
}

// Record appends a custody event for record id performed by actor, with the
// record content hash at this moment. peer names the counterpart system for
// migration events. The completed, signed event is returned.
func (tr *Tracker) Record(id string, typ EventType, actor string, contentHash [32]byte, peer string) (Event, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	chain := tr.chains[id]
	e := Event{
		Record:      id,
		Index:       uint64(len(chain)),
		Type:        typ,
		Timestamp:   tr.now().UTC(),
		Actor:       actor,
		System:      tr.system,
		Peer:        peer,
		ContentHash: contentHash,
	}
	if len(chain) > 0 {
		e.PrevHash = chain[len(chain)-1].Hash
	}
	e.Hash = eventHash(e)
	e.SignerKey = tr.signer.Public()
	e.Signature = tr.signer.Sign(e.Hash[:])
	if _, err := tr.store.Append(encodeEvent(e)); err != nil {
		return Event{}, fmt.Errorf("provenance: persisting custody event: %w", err)
	}
	tr.chains[id] = append(chain, e)
	return e, nil
}

// Adopt appends externally produced custody events (e.g. the history that
// accompanies a migrated record) to this tracker, verifying each link and
// signature. The adopted history must either start a new chain or extend the
// record's existing one.
func (tr *Tracker) Adopt(events []Event) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, e := range events {
		if err := verifyLink(tr.chains[e.Record], e); err != nil {
			return err
		}
		if _, err := tr.store.Append(encodeEvent(e)); err != nil {
			return fmt.Errorf("provenance: persisting adopted event: %w", err)
		}
		tr.chains[e.Record] = append(tr.chains[e.Record], e)
	}
	return nil
}

// verifyLink validates e as the next link after chain.
func verifyLink(chain []Event, e Event) error {
	if e.Index != uint64(len(chain)) {
		return fmt.Errorf("%w: record %s: index %d, want %d", ErrChainBroken, e.Record, e.Index, len(chain))
	}
	var wantPrev [32]byte
	if len(chain) > 0 {
		wantPrev = chain[len(chain)-1].Hash
	}
	if e.PrevHash != wantPrev {
		return fmt.Errorf("%w: record %s: prev-hash mismatch at index %d", ErrChainBroken, e.Record, e.Index)
	}
	if eventHash(e) != e.Hash {
		return fmt.Errorf("%w: record %s: content hash mismatch at index %d", ErrChainBroken, e.Record, e.Index)
	}
	if err := e.SignerKey.Verify(e.Hash[:], e.Signature); err != nil {
		return fmt.Errorf("%w: record %s index %d: %v", ErrBadSignature, e.Record, e.Index, err)
	}
	return nil
}

// Chain returns a copy of the custody chain for id in order.
func (tr *Tracker) Chain(id string) ([]Event, error) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	chain, ok := tr.chains[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRecord, id)
	}
	return append([]Event(nil), chain...), nil
}

// Verify re-validates the full custody chain for id: linkage, hashes, and
// every custodian signature. trusted, when non-nil, restricts acceptable
// signers; an empty map accepts any internally consistent signer.
func (tr *Tracker) Verify(id string, trusted map[string]bool) error {
	chain, err := tr.Chain(id)
	if err != nil {
		return err
	}
	var prefix []Event
	for _, e := range chain {
		if err := verifyLink(prefix, e); err != nil {
			return err
		}
		if trusted != nil && !trusted[e.SignerKey.String()] {
			return fmt.Errorf("%w: record %s index %d signed by untrusted key %s", ErrBadSignature, id, e.Index, e.SignerKey)
		}
		prefix = append(prefix, e)
	}
	return nil
}

// VerifyAll verifies every record's chain; it returns the number of records
// checked and the first error.
func (tr *Tracker) VerifyAll(trusted map[string]bool) (int, error) {
	tr.mu.RLock()
	ids := make([]string, 0, len(tr.chains))
	for id := range tr.chains {
		ids = append(ids, id)
	}
	tr.mu.RUnlock()
	for i, id := range ids {
		if err := tr.Verify(id, trusted); err != nil {
			return i, err
		}
	}
	return len(ids), nil
}

// Records returns the IDs that have custody chains.
func (tr *Tracker) Records() []string {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	out := make([]string, 0, len(tr.chains))
	for id := range tr.chains {
		out = append(out, id)
	}
	return out
}

// Custodians returns, in order of first appearance, the systems that have
// held custody of id — the paper's "proper chain of custody for the
// ownership and transfer of records".
func (tr *Tracker) Custodians(id string) ([]string, error) {
	chain, err := tr.Chain(id)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range chain {
		if !seen[e.System] {
			seen[e.System] = true
			out = append(out, e.System)
		}
	}
	return out, nil
}
