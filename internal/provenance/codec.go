package provenance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"medvault/internal/vcrypto"
)

// Persisted event layout (all integers big-endian, str is u32 len || bytes):
//
//	u16 version | str record | u64 index | str type | i64 unixNano |
//	str actor | str system | str peer | 32B contentHash | 32B prevHash |
//	32B hash | str signerKey | str signature
const codecVersion = 1

// EncodeEvent serializes a custody event for transfer between systems
// (migration bundles, backups). The encoding is self-contained: DecodeEvent
// plus verifyLink recovers and re-validates the event on the other side.
func EncodeEvent(e Event) []byte { return encodeEvent(e) }

// DecodeEvent parses the output of EncodeEvent.
func DecodeEvent(data []byte) (Event, error) { return decodeEvent(data) }

func encodeEvent(e Event) []byte {
	var buf bytes.Buffer
	writeU16(&buf, codecVersion)
	writeStr(&buf, e.Record)
	writeU64(&buf, e.Index)
	writeStr(&buf, string(e.Type))
	writeU64(&buf, uint64(e.Timestamp.UnixNano()))
	writeStr(&buf, e.Actor)
	writeStr(&buf, e.System)
	writeStr(&buf, e.Peer)
	buf.Write(e.ContentHash[:])
	buf.Write(e.PrevHash[:])
	buf.Write(e.Hash[:])
	writeBytes(&buf, e.SignerKey)
	writeBytes(&buf, e.Signature)
	return buf.Bytes()
}

func decodeEvent(data []byte) (Event, error) {
	r := bytes.NewReader(data)
	ver, err := readU16(r)
	if err != nil || ver != codecVersion {
		return Event{}, fmt.Errorf("%w: version %d", ErrCorrupt, ver)
	}
	var e Event
	steps := []func() error{
		func() error { s, err := readStr(r); e.Record = s; return err },
		func() error { v, err := readU64(r); e.Index = v; return err },
		func() error { s, err := readStr(r); e.Type = EventType(s); return err },
		func() error {
			ns, err := readU64(r)
			e.Timestamp = time.Unix(0, int64(ns)).UTC()
			return err
		},
		func() error { s, err := readStr(r); e.Actor = s; return err },
		func() error { s, err := readStr(r); e.System = s; return err },
		func() error { s, err := readStr(r); e.Peer = s; return err },
		func() error { _, err := io.ReadFull(r, e.ContentHash[:]); return err },
		func() error { _, err := io.ReadFull(r, e.PrevHash[:]); return err },
		func() error { _, err := io.ReadFull(r, e.Hash[:]); return err },
		func() error {
			b, err := readBytesField(r)
			e.SignerKey = vcrypto.PublicKey(b)
			return err
		},
		func() error { b, err := readBytesField(r); e.Signature = b; return err },
	}
	for _, f := range steps {
		if err := f(); err != nil {
			return Event{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if r.Len() != 0 {
		return Event{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return e, nil
}

func writeU16(buf *bytes.Buffer, v uint16) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeStr(buf *bytes.Buffer, s string) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(s)))
	buf.Write(b[:])
	buf.WriteString(s)
}

func writeBytes(buf *bytes.Buffer, p []byte) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(p)))
	buf.Write(b[:])
	buf.Write(p)
}

func readU16(r *bytes.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

func readU64(r *bytes.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func readStr(r *bytes.Reader) (string, error) {
	b, err := readBytesField(r)
	return string(b), err
}

func readBytesField(r *bytes.Reader) ([]byte, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if int(n) > r.Len() {
		return nil, fmt.Errorf("field length %d exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}
