package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemNowIsUTC(t *testing.T) {
	now := System{}.Now()
	if now.Location() != time.UTC {
		t.Errorf("System.Now not UTC: %v", now.Location())
	}
	if time.Since(now) > time.Minute {
		t.Error("System.Now far in the past")
	}
}

func TestVirtualAdvance(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	vc := NewVirtual(start)
	if !vc.Now().Equal(start) {
		t.Errorf("Now = %v, want %v", vc.Now(), start)
	}
	got := vc.Advance(30 * 365 * 24 * time.Hour) // an OSHA retention period
	if want := start.Add(30 * 365 * 24 * time.Hour); !got.Equal(want) {
		t.Errorf("Advance = %v, want %v", got, want)
	}
	// Negative advances are ignored: compliance clocks never run backwards.
	before := vc.Now()
	vc.Advance(-time.Hour)
	if !vc.Now().Equal(before) {
		t.Error("clock ran backwards")
	}
}

func TestVirtualSet(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	vc := NewVirtual(start)
	later := start.Add(time.Hour)
	if got := vc.Set(later); !got.Equal(later) {
		t.Errorf("Set = %v", got)
	}
	// Setting an earlier time is ignored.
	if got := vc.Set(start); !got.Equal(later) {
		t.Errorf("Set backwards = %v", got)
	}
}

func TestVirtualNormalizesToUTC(t *testing.T) {
	est := time.FixedZone("EST", -5*3600)
	vc := NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, est))
	if vc.Now().Location() != time.UTC {
		t.Error("Virtual did not normalize to UTC")
	}
}

func TestVirtualConcurrent(t *testing.T) {
	vc := NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				vc.Advance(time.Second)
				vc.Now()
			}
		}()
	}
	wg.Wait()
	want := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(800 * time.Second)
	if !vc.Now().Equal(want) {
		t.Errorf("after concurrent advances: %v, want %v", vc.Now(), want)
	}
}
