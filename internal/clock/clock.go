// Package clock provides an injectable time source.
//
// Regulatory retention logic (OSHA's 30-year minimum, HIPAA disposition
// schedules) is pure time arithmetic. Production code uses the system clock;
// tests and the retention experiments use a virtual clock that can be advanced
// by decades without waiting.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts a time source.
type Clock interface {
	// Now returns the current time in UTC.
	Now() time.Time
}

// System is a Clock backed by the wall clock.
type System struct{}

// Now implements Clock.
func (System) Now() time.Time { return time.Now().UTC() }

// Virtual is a manually advanced Clock, safe for concurrent use.
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtual returns a Virtual clock frozen at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start.UTC()}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored: a compliance clock never runs backwards.
func (v *Virtual) Advance(d time.Duration) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d > 0 {
		v.now = v.now.Add(d)
	}
	return v.now
}

// Set jumps the clock to t if t is later than the current virtual time.
func (v *Virtual) Set(t time.Time) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t.UTC()
	}
	return v.now
}
