package blockstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// stores returns one of each backend, pre-sized with small segments so
// rotation is exercised.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	file, err := OpenFile(t.TempDir(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { file.Close() })
	return map[string]Store{
		"memory": NewMemory(1024),
		"file":   file,
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var refs []Ref
			var want [][]byte
			for i := 0; i < 50; i++ {
				data := bytes.Repeat([]byte{byte(i)}, i*7%300)
				ref, err := s.Append(data)
				if err != nil {
					t.Fatalf("Append %d: %v", i, err)
				}
				refs = append(refs, ref)
				want = append(want, data)
			}
			if s.Len() != 50 {
				t.Errorf("Len = %d, want 50", s.Len())
			}
			for i, ref := range refs {
				got, err := s.Read(ref)
				if err != nil {
					t.Fatalf("Read %d: %v", i, err)
				}
				if !bytes.Equal(got, want[i]) {
					t.Errorf("block %d mismatch", i)
				}
			}
		})
	}
}

func TestScanOrderAndCompleteness(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var want [][]byte
			for i := 0; i < 40; i++ {
				data := []byte(fmt.Sprintf("block-%03d", i))
				if _, err := s.Append(data); err != nil {
					t.Fatal(err)
				}
				want = append(want, data)
			}
			var got [][]byte
			err := s.Scan(func(ref Ref, data []byte) error {
				got = append(got, data)
				return nil
			})
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("scanned %d blocks, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Errorf("scan order broken at %d", i)
				}
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				if _, err := s.Append([]byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			stop := errors.New("stop")
			n := 0
			err := s.Scan(func(ref Ref, data []byte) error {
				n++
				if n == 3 {
					return stop
				}
				return nil
			})
			if !errors.Is(err, stop) {
				t.Errorf("Scan returned %v, want stop sentinel", err)
			}
			if n != 3 {
				t.Errorf("callback ran %d times, want 3", n)
			}
		})
	}
}

func TestReadBadRef(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := s.Append([]byte("hello"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Read(Ref{Segment: 99}); !errors.Is(err, ErrNotFound) {
				t.Errorf("bad segment: %v", err)
			}
			if _, err := s.Read(Ref{Segment: ref.Segment, Offset: 1 << 40}); !errors.Is(err, ErrNotFound) {
				t.Errorf("bad offset: %v", err)
			}
			// Offset pointing mid-frame must fail the magic check.
			if _, err := s.Read(Ref{Segment: ref.Segment, Offset: ref.Offset + 1}); err == nil {
				t.Error("mid-frame read succeeded")
			}
		})
	}
}

func TestTooLargeBlock(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Append(make([]byte, 2048)); !errors.Is(err, ErrTooLarge) {
				t.Errorf("oversized block: %v", err)
			}
		})
	}
}

func TestClosedStore(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Append([]byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Append([]byte("y")); !errors.Is(err, ErrClosed) {
				t.Errorf("Append after close: %v", err)
			}
			if _, err := s.Read(Ref{}); !errors.Is(err, ErrClosed) {
				t.Errorf("Read after close: %v", err)
			}
			if err := s.Scan(func(Ref, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
				t.Errorf("Scan after close: %v", err)
			}
		})
	}
}

func TestSegmentRotation(t *testing.T) {
	m := NewMemory(128)
	for i := 0; i < 20; i++ {
		if _, err := m.Append(make([]byte, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if m.SegmentCount() < 5 {
		t.Errorf("expected rotation into >=5 segments, got %d", m.SegmentCount())
	}
	if m.Len() != 20 {
		t.Errorf("Len = %d, want 20", m.Len())
	}
}

func TestStorageBytesAccountsFraming(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			const n, sz = 10, 30
			for i := 0; i < n; i++ {
				if _, err := s.Append(make([]byte, sz)); err != nil {
					t.Fatal(err)
				}
			}
			want := int64(n * (sz + frameOverhead))
			if got := s.StorageBytes(); got != want {
				t.Errorf("StorageBytes = %d, want %d", got, want)
			}
		})
	}
}

func TestFileReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	var refs []Ref
	for i := 0; i < 25; i++ {
		ref, err := f.Append([]byte(fmt.Sprintf("persistent-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(dir, 256)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Len() != 25 {
		t.Errorf("recovered Len = %d, want 25", re.Len())
	}
	for i, ref := range refs {
		got, err := re.Read(ref)
		if err != nil {
			t.Fatalf("Read %d after reopen: %v", i, err)
		}
		if want := fmt.Sprintf("persistent-%d", i); string(got) != want {
			t.Errorf("block %d = %q, want %q", i, got, want)
		}
	}
	// And appends continue in the right place.
	ref, err := re.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Read(ref)
	if err != nil || string(got) != "after-reopen" {
		t.Errorf("append after reopen: %q %v", got, err)
	}
}

func TestFileRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	// Simulate a crash mid-append: write a partial frame at the tail.
	path := filepath.Join(dir, segName(0))
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write([]byte{frameMagic, 0, 0}); err != nil {
		t.Fatal(err)
	}
	file.Close()

	re, err := OpenFile(dir, 4096)
	if err != nil {
		t.Fatalf("recovery with torn tail failed: %v", err)
	}
	defer re.Close()
	if re.Len() != 5 {
		t.Errorf("recovered %d blocks, want 5", re.Len())
	}
	// A new append must succeed and be readable.
	ref, err := re.Append([]byte("post-crash"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := re.Read(ref); err != nil || string(got) != "post-crash" {
		t.Errorf("post-crash append: %q %v", got, err)
	}
}

func TestFileDetectsBitRot(t *testing.T) {
	dir := t.TempDir()
	f, err := OpenFile(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := f.Append(bytes.Repeat([]byte("EPHI"), 20))
	if err != nil {
		t.Fatal(err)
	}
	f.Sync()

	// Flip one payload byte on disk, out-of-band.
	path := filepath.Join(dir, segName(0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[frameOverhead+3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	if _, err := f.Read(ref); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit rot not detected: %v", err)
	}
	if err := f.Scan(func(Ref, []byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Scan missed bit rot: %v", err)
	}
	f.Close()

	// Recovery refuses to resurrect the corrupt block: it truncates at the
	// corruption point (it is the last segment, so this is a torn tail).
	re, err := OpenFile(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 0 {
		t.Errorf("corrupt block resurrected: Len = %d", re.Len())
	}
}

func TestConcurrentAppendRead(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			const writers, per = 8, 30
			var (
				mu   sync.Mutex
				refs []Ref
				wg   sync.WaitGroup
			)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						ref, err := s.Append([]byte(fmt.Sprintf("w%d-i%d", w, i)))
						if err != nil {
							t.Errorf("Append: %v", err)
							return
						}
						mu.Lock()
						refs = append(refs, ref)
						mu.Unlock()
						if _, err := s.Read(ref); err != nil {
							t.Errorf("Read own write: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if s.Len() != writers*per {
				t.Errorf("Len = %d, want %d", s.Len(), writers*per)
			}
			seen := make(map[Ref]bool)
			for _, r := range refs {
				if seen[r] {
					t.Fatalf("duplicate ref %v handed out", r)
				}
				seen[r] = true
			}
		})
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		payload, n, err := decodeFrame(encodeFrame(data))
		return err == nil && n == len(data)+frameOverhead && bytes.Equal(payload, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefString(t *testing.T) {
	if got := (Ref{Segment: 3, Offset: 42}).String(); got != "3:42" {
		t.Errorf("Ref.String() = %q", got)
	}
}

func TestOpenFileRejectsGappySegments(t *testing.T) {
	dir := t.TempDir()
	// seg-00000000 missing, seg-00000001 present.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(dir, 1024); !errors.Is(err, ErrCorrupt) {
		t.Errorf("gappy segment numbering accepted: %v", err)
	}
}
