package blockstore

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"medvault/internal/faultfs"
)

// File is a Store backed by segment files in a directory. Segments are named
// seg-00000000.blk, seg-00000001.blk, ... and are only ever appended to;
// rotation happens when a segment would exceed its capacity. Reopening a
// directory recovers the store by scanning existing segments, truncating a
// torn trailing frame in the newest segment (the only place one can occur).
type File struct {
	mu     sync.RWMutex
	fs     faultfs.FS
	dir    string
	segCap int
	active faultfs.File // newest segment, opened for append
	sizes  []int64      // committed byte length per segment
	count  int
	closed bool
}

var _ Store = (*File)(nil)

// OpenFile opens (or creates) a file-backed store in dir on the real
// filesystem. segCap is the segment capacity in bytes (0 means 64 MiB).
func OpenFile(dir string, segCap int) (*File, error) {
	return OpenFileFS(faultfs.OS{}, dir, segCap)
}

// OpenFileFS is OpenFile over an explicit filesystem — the seam the
// fault-injection and crash-simulation tests use.
func OpenFileFS(fsys faultfs.FS, dir string, segCap int) (*File, error) {
	if segCap <= 0 {
		segCap = 64 << 20
	}
	if err := fsys.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("blockstore: creating %s: %w", dir, err)
	}
	f := &File{fs: fsys, dir: dir, segCap: segCap}
	if err := f.recover(); err != nil {
		return nil, err
	}
	return f, nil
}

func segName(i int) string { return fmt.Sprintf("seg-%08d.blk", i) }

// recover scans existing segments, validating frames and truncating a torn
// tail on the newest segment.
func (f *File) recover() error {
	names, err := listSegments(f.fs, f.dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return f.openSegment(0)
	}
	f.sizes = make([]int64, len(names))
	for i, name := range names {
		path := filepath.Join(f.dir, name)
		valid, blocks, err := validatePrefix(f.fs, path)
		if err != nil {
			return fmt.Errorf("blockstore: recovering %s: %w", name, err)
		}
		info, err := f.fs.Stat(path)
		if err != nil {
			return fmt.Errorf("blockstore: recovering %s: %w", name, err)
		}
		if valid < info.Size() {
			if i != len(names)-1 {
				// Torn frames may only exist at the very end of the log.
				return fmt.Errorf("%w: segment %s has invalid frame at offset %d", ErrCorrupt, name, valid)
			}
			if err := f.fs.Truncate(path, valid); err != nil {
				return fmt.Errorf("blockstore: truncating torn tail of %s: %w", name, err)
			}
		}
		f.sizes[i] = valid
		f.count += blocks
	}
	last := len(names) - 1
	active, err := f.fs.OpenFile(filepath.Join(f.dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("blockstore: opening active segment: %w", err)
	}
	f.active = active
	return nil
}

func listSegments(fsys faultfs.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blockstore: listing %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".blk") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	// Segment numbering must be dense: a missing middle segment means lost data.
	for i, name := range names {
		num, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".blk"))
		if err != nil || num != i {
			return nil, fmt.Errorf("%w: unexpected segment file %s at position %d", ErrCorrupt, name, i)
		}
	}
	return names, nil
}

// validatePrefix returns the byte length of the valid frame prefix of the
// segment file and the number of complete frames in it.
func validatePrefix(fsys faultfs.FS, path string) (int64, int, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	off := 0
	blocks := 0
	for off < len(data) {
		_, n, err := decodeFrame(data[off:])
		if err != nil {
			return int64(off), blocks, nil // torn/corrupt tail starts here
		}
		off += n
		blocks++
	}
	return int64(off), blocks, nil
}

func (f *File) openSegment(i int) error {
	file, err := f.fs.OpenFile(filepath.Join(f.dir, segName(i)), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o600)
	if err != nil {
		return fmt.Errorf("blockstore: creating segment %d: %w", i, err)
	}
	f.active = file
	f.sizes = append(f.sizes, 0)
	return nil
}

// Append implements Store.
func (f *File) Append(data []byte) (Ref, error) {
	start := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Ref{}, ErrClosed
	}
	frame := encodeFrame(data)
	if len(frame) > f.segCap {
		return Ref{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(frame), f.segCap)
	}
	cur := len(f.sizes) - 1
	if f.sizes[cur]+int64(len(frame)) > int64(f.segCap) {
		// A rotated-away segment is never written again, so this is the last
		// chance to make its tail durable; close without sync would leave the
		// frozen segment's recent frames at the mercy of the page cache.
		if err := f.active.Sync(); err != nil {
			return Ref{}, fmt.Errorf("blockstore: syncing full segment: %w", err)
		}
		if err := f.active.Close(); err != nil {
			return Ref{}, fmt.Errorf("blockstore: closing full segment: %w", err)
		}
		if err := f.openSegment(cur + 1); err != nil {
			return Ref{}, err
		}
		cur++
	}
	ref := Ref{Segment: uint32(cur), Offset: uint64(f.sizes[cur])}
	if _, err := f.active.Write(frame); err != nil {
		return Ref{}, fmt.Errorf("blockstore: appending %d bytes: %w", len(frame), err)
	}
	f.sizes[cur] += int64(len(frame))
	f.count++
	fileMetrics.appends.Inc()
	fileMetrics.appendBytes.Add(uint64(len(frame)))
	fileMetrics.appendSeconds.ObserveSince(start)
	return ref, nil
}

// Read implements Store.
func (f *File) Read(ref Ref) ([]byte, error) {
	start := time.Now()
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return nil, ErrClosed
	}
	if int(ref.Segment) >= len(f.sizes) {
		return nil, fmt.Errorf("%w: segment %d", ErrNotFound, ref.Segment)
	}
	if int64(ref.Offset) >= f.sizes[ref.Segment] {
		return nil, fmt.Errorf("%w: offset %d beyond committed %d", ErrNotFound, ref.Offset, f.sizes[ref.Segment])
	}
	file, err := f.fs.OpenFile(filepath.Join(f.dir, segName(int(ref.Segment))), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("blockstore: opening segment %d: %w", ref.Segment, err)
	}
	defer file.Close()
	var hdr [frameOverhead]byte
	if _, err := file.ReadAt(hdr[:], int64(ref.Offset)); err != nil {
		return nil, fmt.Errorf("%w: reading frame header: %v", ErrCorrupt, err)
	}
	if hdr[0] != frameMagic {
		return nil, fmt.Errorf("%w: bad frame magic 0x%02x", ErrCorrupt, hdr[0])
	}
	n := binary.BigEndian.Uint32(hdr[1:5])
	crc := binary.BigEndian.Uint32(hdr[5:9])
	payload := make([]byte, n)
	if _, err := file.ReadAt(payload, int64(ref.Offset)+frameOverhead); err != nil {
		return nil, fmt.Errorf("%w: reading %d-byte payload: %v", ErrCorrupt, n, err)
	}
	if checksum(payload) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	fileMetrics.reads.Inc()
	fileMetrics.readBytes.Add(uint64(len(payload)))
	fileMetrics.readSeconds.ObserveSince(start)
	return payload, nil
}

// Scan implements Store.
func (f *File) Scan(fn func(ref Ref, data []byte) error) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	for si := range f.sizes {
		data, err := f.fs.ReadFile(filepath.Join(f.dir, segName(si)))
		if err != nil {
			return fmt.Errorf("blockstore: scanning segment %d: %w", si, err)
		}
		// Scan only the committed prefix; an in-flight append past it is
		// not yet visible.
		if int64(len(data)) > f.sizes[si] {
			data = data[:f.sizes[si]]
		}
		off := uint64(0)
		for off < uint64(len(data)) {
			payload, n, err := decodeFrame(data[off:])
			if err != nil {
				return fmt.Errorf("segment %d offset %d: %w", si, off, err)
			}
			if err := fn(Ref{Segment: uint32(si), Offset: off}, payload); err != nil {
				return err
			}
			off += uint64(n)
		}
	}
	return nil
}

// Len implements Store.
func (f *File) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.count
}

// StorageBytes implements Store.
func (f *File) StorageBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total int64
	for _, s := range f.sizes {
		total += s
	}
	return total
}

// Sync implements Store.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	start := time.Now()
	if err := f.active.Sync(); err != nil {
		return fmt.Errorf("blockstore: sync: %w", err)
	}
	fileMetrics.syncSeconds.ObserveSince(start)
	return nil
}

// Close implements Store.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	if err := f.active.Close(); err != nil {
		return fmt.Errorf("blockstore: close: %w", err)
	}
	return nil
}

// Dir returns the directory holding the segments, used by the attack
// injector to corrupt files out-of-band.
func (f *File) Dir() string { return f.dir }

// ReadRaw reads the raw bytes of all segments concatenated, for the
// residual-plaintext probe. It bypasses frame validation deliberately.
func (f *File) ReadRaw() ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []byte
	for si := range f.sizes {
		data, err := f.fs.ReadFile(filepath.Join(f.dir, segName(si)))
		if err != nil {
			return nil, fmt.Errorf("blockstore: raw read of segment %d: %w", si, err)
		}
		out = append(out, data...)
	}
	return out, nil
}

var _ io.Closer = (*File)(nil)
