// Package blockstore implements MedVault's low-level storage engine: a
// log-structured, append-only store of variable-length blocks, split across
// fixed-capacity segment files.
//
// Append-only is a deliberate compliance property, not an implementation
// convenience: nothing in the engine can overwrite a written byte, so every
// higher layer (WORM, versioned records, audit) inherits physical
// write-once behaviour on cheap commodity files — the paper's cost
// requirement. Each block is framed with a CRC-32C so accidental corruption
// and torn writes are detected on read; *malicious* rewrites (an insider can
// recompute a CRC) are caught one layer up by the Merkle commitment log.
package blockstore

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"

	"medvault/internal/obs"
)

// Errors returned by the package.
var (
	// ErrNotFound indicates no block exists at the given reference.
	ErrNotFound = errors.New("blockstore: block not found")
	// ErrCorrupt indicates a block failed its CRC or framing check.
	ErrCorrupt = errors.New("blockstore: block corrupt")
	// ErrClosed indicates use of a closed store.
	ErrClosed = errors.New("blockstore: store closed")
	// ErrTooLarge indicates a block exceeding the segment capacity.
	ErrTooLarge = errors.New("blockstore: block exceeds segment capacity")
)

// Ref locates a block: which segment and the byte offset of its frame
// within that segment.
type Ref struct {
	Segment uint32
	Offset  uint64
}

// String formats a Ref for logs and audit entries.
func (r Ref) String() string { return fmt.Sprintf("%d:%d", r.Segment, r.Offset) }

// Store is an append-only block store.
type Store interface {
	// Append writes data as a new block and returns its reference.
	Append(data []byte) (Ref, error)
	// Read returns the block at ref. The returned slice is a private copy.
	Read(ref Ref) ([]byte, error)
	// Scan calls fn for every block in append order; stopping early by
	// returning a non-nil error (which Scan then returns). Scan also
	// verifies framing as it goes, so a full Scan doubles as a media check.
	Scan(fn func(ref Ref, data []byte) error) error
	// Len returns the number of blocks stored.
	Len() int
	// StorageBytes returns the total bytes consumed, including framing.
	StorageBytes() int64
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// AppendCtx is s.Append recording a "blockstore.append" span on the trace
// carried by ctx. The helpers live here rather than on the interface so
// every Store implementation is traced identically without widening the
// storage contract.
func AppendCtx(ctx context.Context, s Store, data []byte) (Ref, error) {
	_, sp := obs.StartSpan(ctx, "blockstore.append")
	sp.SetAttr("bytes", strconv.Itoa(len(data)))
	ref, err := s.Append(data)
	sp.End(err)
	return ref, err
}

// ReadCtx is s.Read recording a "blockstore.read" span.
func ReadCtx(ctx context.Context, s Store, ref Ref) ([]byte, error) {
	_, sp := obs.StartSpan(ctx, "blockstore.read")
	data, err := s.Read(ref)
	sp.SetAttr("bytes", strconv.Itoa(len(data)))
	sp.End(err)
	return data, err
}

// SyncCtx is s.Sync recording a "blockstore.sync" span.
func SyncCtx(ctx context.Context, s Store) error {
	_, sp := obs.StartSpan(ctx, "blockstore.sync")
	err := s.Sync()
	sp.End(err)
	return err
}

// Frame layout:
//
//	u8 magic (0xB1) | u32 payload length | u32 CRC-32C(payload) | payload
const (
	frameMagic    = 0xB1
	frameOverhead = 1 + 4 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// metrics bundles the I/O instrumentation for one backend kind. All stores
// of a backend share one set, labeled backend="file" or backend="memory",
// so the /metrics view separates real disk traffic from in-memory traffic.
type metrics struct {
	appends, appendBytes       *obs.Counter
	reads, readBytes           *obs.Counter
	appendSeconds, readSeconds *obs.Histogram
	syncSeconds                *obs.Histogram
}

func newMetrics(backend string) *metrics {
	l := obs.L("backend", backend)
	return &metrics{
		appends: obs.Default.Counter("medvault_blockstore_appends_total",
			"Blocks appended.", l),
		appendBytes: obs.Default.Counter("medvault_blockstore_append_bytes_total",
			"Bytes appended, framing included.", l),
		reads: obs.Default.Counter("medvault_blockstore_reads_total",
			"Blocks read.", l),
		readBytes: obs.Default.Counter("medvault_blockstore_read_bytes_total",
			"Payload bytes read.", l),
		appendSeconds: obs.Default.Histogram("medvault_blockstore_append_seconds",
			"Block append latency.", obs.LatencyBuckets, l),
		readSeconds: obs.Default.Histogram("medvault_blockstore_read_seconds",
			"Block read latency.", obs.LatencyBuckets, l),
		syncSeconds: obs.Default.Histogram("medvault_blockstore_sync_seconds",
			"Store sync (fsync) latency.", obs.LatencyBuckets, l),
	}
}

var (
	fileMetrics   = newMetrics("file")
	memoryMetrics = newMetrics("memory")
)
