// Package blockstore implements MedVault's low-level storage engine: a
// log-structured, append-only store of variable-length blocks, split across
// fixed-capacity segment files.
//
// Append-only is a deliberate compliance property, not an implementation
// convenience: nothing in the engine can overwrite a written byte, so every
// higher layer (WORM, versioned records, audit) inherits physical
// write-once behaviour on cheap commodity files — the paper's cost
// requirement. Each block is framed with a CRC-32C so accidental corruption
// and torn writes are detected on read; *malicious* rewrites (an insider can
// recompute a CRC) are caught one layer up by the Merkle commitment log.
package blockstore

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Errors returned by the package.
var (
	// ErrNotFound indicates no block exists at the given reference.
	ErrNotFound = errors.New("blockstore: block not found")
	// ErrCorrupt indicates a block failed its CRC or framing check.
	ErrCorrupt = errors.New("blockstore: block corrupt")
	// ErrClosed indicates use of a closed store.
	ErrClosed = errors.New("blockstore: store closed")
	// ErrTooLarge indicates a block exceeding the segment capacity.
	ErrTooLarge = errors.New("blockstore: block exceeds segment capacity")
)

// Ref locates a block: which segment and the byte offset of its frame
// within that segment.
type Ref struct {
	Segment uint32
	Offset  uint64
}

// String formats a Ref for logs and audit entries.
func (r Ref) String() string { return fmt.Sprintf("%d:%d", r.Segment, r.Offset) }

// Store is an append-only block store.
type Store interface {
	// Append writes data as a new block and returns its reference.
	Append(data []byte) (Ref, error)
	// Read returns the block at ref. The returned slice is a private copy.
	Read(ref Ref) ([]byte, error)
	// Scan calls fn for every block in append order; stopping early by
	// returning a non-nil error (which Scan then returns). Scan also
	// verifies framing as it goes, so a full Scan doubles as a media check.
	Scan(fn func(ref Ref, data []byte) error) error
	// Len returns the number of blocks stored.
	Len() int
	// StorageBytes returns the total bytes consumed, including framing.
	StorageBytes() int64
	// Sync flushes buffered writes to stable storage.
	Sync() error
	// Close releases resources. The store is unusable afterwards.
	Close() error
}

// Frame layout:
//
//	u8 magic (0xB1) | u32 payload length | u32 CRC-32C(payload) | payload
const (
	frameMagic    = 0xB1
	frameOverhead = 1 + 4 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }
