package blockstore

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Memory is an in-memory Store used by tests and benchmarks. It keeps the
// same segment/frame structure as the file store so the attack injector can
// corrupt raw bytes through RawSegment the same way it corrupts files.
type Memory struct {
	mu       sync.RWMutex
	segments [][]byte
	segCap   int
	count    int
	closed   bool
}

var _ Store = (*Memory)(nil)

// NewMemory returns an in-memory store with the given segment capacity in
// bytes (0 means a 4 MiB default).
func NewMemory(segCap int) *Memory {
	if segCap <= 0 {
		segCap = 4 << 20
	}
	return &Memory{segments: [][]byte{nil}, segCap: segCap}
}

// Append implements Store.
func (m *Memory) Append(data []byte) (Ref, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Ref{}, ErrClosed
	}
	frame := encodeFrame(data)
	if len(frame) > m.segCap {
		return Ref{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(frame), m.segCap)
	}
	cur := len(m.segments) - 1
	if len(m.segments[cur])+len(frame) > m.segCap {
		m.segments = append(m.segments, nil)
		cur++
	}
	ref := Ref{Segment: uint32(cur), Offset: uint64(len(m.segments[cur]))}
	m.segments[cur] = append(m.segments[cur], frame...)
	m.count++
	memoryMetrics.appends.Inc()
	memoryMetrics.appendBytes.Add(uint64(len(frame)))
	return ref, nil
}

// Read implements Store.
func (m *Memory) Read(ref Ref) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return nil, ErrClosed
	}
	if int(ref.Segment) >= len(m.segments) {
		return nil, fmt.Errorf("%w: segment %d", ErrNotFound, ref.Segment)
	}
	seg := m.segments[ref.Segment]
	if ref.Offset >= uint64(len(seg)) {
		return nil, fmt.Errorf("%w: offset %d beyond segment end %d", ErrNotFound, ref.Offset, len(seg))
	}
	data, _, err := decodeFrame(seg[ref.Offset:])
	if err == nil {
		memoryMetrics.reads.Inc()
		memoryMetrics.readBytes.Add(uint64(len(data)))
	}
	return data, err
}

// Scan implements Store.
func (m *Memory) Scan(fn func(ref Ref, data []byte) error) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	for si, seg := range m.segments {
		off := uint64(0)
		for off < uint64(len(seg)) {
			data, n, err := decodeFrame(seg[off:])
			if err != nil {
				return fmt.Errorf("segment %d offset %d: %w", si, off, err)
			}
			if err := fn(Ref{Segment: uint32(si), Offset: off}, data); err != nil {
				return err
			}
			off += uint64(n)
		}
	}
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.count
}

// StorageBytes implements Store.
func (m *Memory) StorageBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, seg := range m.segments {
		total += int64(len(seg))
	}
	return total
}

// Sync implements Store (a no-op for memory).
func (m *Memory) Sync() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// CorruptFrame models a format-aware insider with direct disk access: it
// rewrites the payload of the frame at ref in place — applying mutate to the
// payload and recomputing a *valid* CRC — so the tampering cannot be caught
// by the framing layer, only by cryptographic verification above it. mutate
// must return a payload of the same length (in-place disk edits cannot grow
// a frame).
func (m *Memory) CorruptFrame(ref Ref, mutate func([]byte) []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if int(ref.Segment) >= len(m.segments) {
		return fmt.Errorf("%w: segment %d", ErrNotFound, ref.Segment)
	}
	seg := m.segments[ref.Segment]
	if ref.Offset >= uint64(len(seg)) {
		return fmt.Errorf("%w: offset %d", ErrNotFound, ref.Offset)
	}
	payload, n, err := decodeFrame(seg[ref.Offset:])
	if err != nil {
		return err
	}
	mutated := mutate(payload)
	if len(mutated) != len(payload) {
		return fmt.Errorf("blockstore: CorruptFrame must preserve length: %d != %d", len(mutated), len(payload))
	}
	frame := encodeFrame(mutated)
	copy(seg[ref.Offset:ref.Offset+uint64(n)], frame)
	return nil
}

// RawSegment exposes a segment's raw bytes for the attack injector and the
// residual-plaintext probe. Mutating the returned slice corrupts the store,
// which is exactly what the insider-attack experiments do.
func (m *Memory) RawSegment(i int) []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if i < 0 || i >= len(m.segments) {
		return nil
	}
	return m.segments[i]
}

// SegmentCount returns the number of segments.
func (m *Memory) SegmentCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.segments)
}

func encodeFrame(data []byte) []byte {
	frame := make([]byte, frameOverhead+len(data))
	frame[0] = frameMagic
	binary.BigEndian.PutUint32(frame[1:5], uint32(len(data)))
	binary.BigEndian.PutUint32(frame[5:9], checksum(data))
	copy(frame[frameOverhead:], data)
	return frame
}

// decodeFrame parses one frame from the front of b, returning a copy of the
// payload and the total frame length consumed.
func decodeFrame(b []byte) ([]byte, int, error) {
	if len(b) < frameOverhead {
		return nil, 0, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
	}
	if b[0] != frameMagic {
		return nil, 0, fmt.Errorf("%w: bad frame magic 0x%02x", ErrCorrupt, b[0])
	}
	n := binary.BigEndian.Uint32(b[1:5])
	crc := binary.BigEndian.Uint32(b[5:9])
	if uint64(frameOverhead)+uint64(n) > uint64(len(b)) {
		return nil, 0, fmt.Errorf("%w: frame length %d overruns segment", ErrCorrupt, n)
	}
	payload := b[frameOverhead : frameOverhead+int(n)]
	if checksum(payload) != crc {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	out := make([]byte, n)
	copy(out, payload)
	return out, frameOverhead + int(n), nil
}
