package medvault_test

import (
	"fmt"
	"testing"

	"medvault/internal/audit"
	"medvault/internal/blockstore"
	"medvault/internal/ehr"
	"medvault/internal/experiments"
	"medvault/internal/index"
	"medvault/internal/merkle"
	"medvault/internal/vcrypto"
	"medvault/internal/wal"
)

// Ablation benchmarks decompose the hybrid store's per-write cost into its
// component mechanisms, so the E2 overhead (medvault put ≈ 10x relational
// put) can be attributed: which security property costs what. Run:
//
//	go test -bench=BenchmarkAblation -benchmem
//
// Each benchmark isolates exactly one stage of the write path on the same
// synthetic record stream.

func ablationRecords(b *testing.B) [][]byte {
	b.Helper()
	gen := ehr.NewGenerator(77, experiments.Epoch)
	out := make([][]byte, b.N)
	for i := range out {
		out[i] = ehr.Encode(gen.Next())
	}
	return out
}

// BenchmarkAblationCodec: canonical encoding alone.
func BenchmarkAblationCodec(b *testing.B) {
	gen := ehr.NewGenerator(77, experiments.Epoch)
	recs := gen.Corpus(b.N)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ehr.Encode(recs[i])
	}
}

// BenchmarkAblationSeal: AES-256-GCM envelope encryption of the encoded
// record (the confidentiality requirement's share).
func BenchmarkAblationSeal(b *testing.B) {
	recs := ablationRecords(b)
	key, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := vcrypto.Seal(key, recs[i], []byte("aad")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDEKCreate: per-record key generation + wrapping (the
// crypto-shredding requirement's share; paid once per record, not version).
func BenchmarkAblationDEKCreate(b *testing.B) {
	master, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	ks := vcrypto.NewKeyStore(master)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ks.Create(fmt.Sprintf("rec-%d-%d", b.N, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBlockAppend: raw segment-store append (the storage
// engine's floor).
func BenchmarkAblationBlockAppend(b *testing.B) {
	recs := ablationRecords(b)
	store := blockstore.NewMemory(0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := store.Append(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMerkleAppend: commitment-log append (the insider-
// integrity requirement's incremental share).
func BenchmarkAblationMerkleAppend(b *testing.B) {
	recs := ablationRecords(b)
	tree := merkle.NewTree()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.Append(recs[i])
	}
}

// BenchmarkAblationIndexAdd: SSE index ingestion (the trustworthy-search
// requirement's share — typically the dominant term: one HMAC per keyword).
func BenchmarkAblationIndexAdd(b *testing.B) {
	gen := ehr.NewGenerator(77, experiments.Epoch)
	recs := gen.Corpus(b.N)
	master, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	idx := index.NewSSE(master)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx.Add(recs[i].ID, recs[i].SearchText())
	}
}

// BenchmarkAblationIndexAddPlaintext: the same ingestion into the plaintext
// index — the privacy delta is the difference between these two.
func BenchmarkAblationIndexAddPlaintext(b *testing.B) {
	gen := ehr.NewGenerator(77, experiments.Epoch)
	recs := gen.Corpus(b.N)
	idx := index.NewPlaintext()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx.Add(recs[i].ID, recs[i].SearchText())
	}
}

// BenchmarkAblationAuditAppend: one audit event per operation (the logging
// requirement's share).
func BenchmarkAblationAuditAppend(b *testing.B) {
	signer, err := vcrypto.NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	key, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	log, err := audit.Open(audit.Config{Store: blockstore.NewMemory(0), MACKey: key, Signer: signer})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(audit.Event{Actor: "a", Action: audit.ActionCreate, Outcome: audit.OutcomeAllowed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWALAppend: durable intent logging with fsync per write —
// the price of crash consistency on real storage (only paid by durable
// vaults; the memory-backed benchmarks above skip it).
func BenchmarkAblationWALAppend(b *testing.B) {
	recs := ablationRecords(b)
	log, err := wal.Open(b.TempDir()+"/ablate.wal", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSignHead: signing a tree head (paid per checkpoint, not
// per write — shown for completeness).
func BenchmarkAblationSignHead(b *testing.B) {
	signer, err := vcrypto.NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	log := merkle.NewLog(signer, nil)
	log.Append([]byte("x"))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		log.Head()
	}
}
