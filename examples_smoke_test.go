package medvault_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end-to-end. The examples
// are living documentation; a library change that breaks one must fail CI,
// not a reader.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile+run takes a few seconds")
	}
	examples := map[string]string{
		"quickstart":           "verified:",
		"hospital":             "integrity sweep clean",
		"migration":            "all tampering detected",
		"breach_investigation": "blast radius limited",
		"secure_deletion":      "post-disposal integrity sweep clean",
		"patient_rights":       "rejected, as it must be",
	}
	for name, marker := range examples {
		name, marker := name, marker
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), marker) {
				t.Errorf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
}
