// Package medvault_test holds the testing.B benchmarks that correspond to
// experiments E1–E9 (see DESIGN.md's experiment index and cmd/medbench for
// the table-producing harness). Run with:
//
//	go test -bench=. -benchmem
package medvault_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"medvault/internal/attack"
	"medvault/internal/audit"
	"medvault/internal/backup"
	"medvault/internal/blockstore"
	"medvault/internal/clock"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/experiments"
	"medvault/internal/index"
	"medvault/internal/migrate"
	"medvault/internal/stores"
	"medvault/internal/vcrypto"
)

// subjectsOrDie builds the five storage models.
func subjectsOrDie(b *testing.B) []experiments.Subject {
	b.Helper()
	subs, err := experiments.NewSubjects()
	if err != nil {
		b.Fatal(err)
	}
	return subs
}

// BenchmarkE1Compliance runs the full 13-probe compliance matrix.
func BenchmarkE1Compliance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Put measures create latency per storage model (experiment E2).
func BenchmarkE2Put(b *testing.B) {
	for _, sub := range subjectsOrDie(b) {
		b.Run(sub.Store.Name(), func(b *testing.B) {
			fresh := subjectsOrDie(b)
			var s stores.Store
			for _, f := range fresh {
				if f.Store.Name() == sub.Store.Name() {
					s = f.Store
				}
			}
			gen := ehr.NewGenerator(1, experiments.Epoch)
			recs := gen.Corpus(b.N)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Put(recs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2Get measures read latency per storage model (experiment E2).
func BenchmarkE2Get(b *testing.B) {
	const n = 1000
	for _, sub := range subjectsOrDie(b) {
		b.Run(sub.Store.Name(), func(b *testing.B) {
			// The body re-runs during calibration; seed only once.
			recs := experiments.Corpus(n)
			if sub.Store.Len() == 0 {
				for _, r := range recs {
					if err := sub.Store.Put(r); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sub.Store.Get(recs[i%n].ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2Search measures keyword search per storage model at n=1000
// (experiment E2/E4 crossover: scan-based models degrade with n).
func BenchmarkE2Search(b *testing.B) {
	const n = 1000
	kw := ehr.CommonCondition()
	for _, sub := range subjectsOrDie(b) {
		b.Run(sub.Store.Name(), func(b *testing.B) {
			if sub.Store.Len() == 0 {
				for _, r := range experiments.Corpus(n) {
					if err := sub.Store.Put(r); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sub.Store.Search(kw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Verify measures the cost of each model's integrity sweep over
// 500 records — the price of detection (experiment E3).
func BenchmarkE3Verify(b *testing.B) {
	const n = 500
	for _, sub := range subjectsOrDie(b) {
		b.Run(sub.Store.Name(), func(b *testing.B) {
			if sub.Store.Len() == 0 {
				for _, r := range experiments.Corpus(n) {
					if err := sub.Store.Put(r); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sub.Store.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Campaign mounts the full attack campaign (experiment E3).
func BenchmarkE3Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		subs := subjectsOrDie(b)
		for _, sub := range subs {
			recs := experiments.Corpus(6)
			for _, r := range recs {
				if err := sub.Store.Put(r); err != nil {
					b.Fatal(err)
				}
			}
			attack.Mount(sub.Store, attack.BitFlip, recs[0].ID, recs[1].ID)
		}
	}
}

// BenchmarkE4Search compares scan vs plaintext index vs SSE index at
// n=5000 (experiment E4).
func BenchmarkE4Search(b *testing.B) {
	const n = 5000
	recs := experiments.Corpus(n)
	kw := ehr.CommonCondition()
	master, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	plain := index.NewPlaintext()
	sse := index.NewSSE(master)
	for _, r := range recs {
		plain.Add(r.ID, r.SearchText())
		sse.Add(r.ID, r.SearchText())
	}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			for _, r := range recs {
				for _, w := range index.Tokenize(r.SearchText()) {
					if w == kw {
						count++
						break
					}
				}
			}
		}
	})
	b.Run("plaintext-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plain.Search(kw)
		}
	})
	b.Run("sse-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sse.Search(kw)
		}
	})
}

// BenchmarkE5Shred measures crypto-shredding latency (experiment E5): the
// cost is key destruction plus index cleanup, independent of record size.
func BenchmarkE5Shred(b *testing.B) {
	subs := subjectsOrDie(b)
	sub := subs[len(subs)-1] // MedVault
	recs := ehr.NewGenerator(1, experiments.Epoch).Corpus(b.N)
	for i := range recs {
		recs[i].CreatedAt = experiments.Epoch
		if err := sub.Store.Put(recs[i]); err != nil {
			b.Fatal(err)
		}
	}
	sub.Clock.Advance(40 * 365 * 24 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sub.Store.Dispose(recs[i].ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Migrate measures vault-to-vault migration throughput with full
// manifest verification (experiment E6).
func BenchmarkE6Migrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := subjectsOrDie(b)
		c := subjectsOrDie(b)
		src, dst := a[len(a)-1], c[len(c)-1]
		recs := experiments.Corpus(25)
		var ids []string
		for _, r := range recs {
			if err := src.Store.Put(r); err != nil {
				b.Fatal(err)
			}
			ids = append(ids, r.ID)
		}
		b.StartTimer()
		rep, err := migrate.Run(src.Vault, dst.Vault, ids, migrate.Options{Actor: "bench-admin"})
		if err != nil || len(rep.Migrated) != len(ids) {
			b.Fatalf("migrated %d/%d: %v", len(rep.Migrated), len(ids), err)
		}
	}
}

// BenchmarkE7AuditAppend measures tamper-evident audit append cost
// (experiment E7).
func BenchmarkE7AuditAppend(b *testing.B) {
	signer, err := vcrypto.NewSigner()
	if err != nil {
		b.Fatal(err)
	}
	key, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	log, err := audit.Open(audit.Config{Store: blockstore.NewMemory(0), MACKey: key, Signer: signer})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := log.Append(audit.Event{
			Actor: "dr-a", Action: audit.ActionRead,
			Record: fmt.Sprintf("r-%d", i%100), Outcome: audit.OutcomeAllowed,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7AuditVerify measures full-chain verification per event count
// (experiment E7's linearity series).
func BenchmarkE7AuditVerify(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			signer, err := vcrypto.NewSigner()
			if err != nil {
				b.Fatal(err)
			}
			key, err := vcrypto.NewKey()
			if err != nil {
				b.Fatal(err)
			}
			log, err := audit.Open(audit.Config{Store: blockstore.NewMemory(0), MACKey: key, Signer: signer})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := log.Append(audit.Event{Actor: "a", Action: audit.ActionRead, Outcome: audit.OutcomeAllowed}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := log.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Backup measures sealed full-backup creation (experiment E8).
func BenchmarkE8Backup(b *testing.B) {
	subs := subjectsOrDie(b)
	sub := subs[len(subs)-1]
	for _, r := range experiments.Corpus(200) {
		if err := sub.Store.Put(r); err != nil {
			b.Fatal(err)
		}
	}
	key, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backup.Create(sub.Vault, "bench-admin", key, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Restore measures verified restore into a fresh vault
// (experiment E8).
func BenchmarkE8Restore(b *testing.B) {
	subs := subjectsOrDie(b)
	sub := subs[len(subs)-1]
	for _, r := range experiments.Corpus(100) {
		if err := sub.Store.Put(r); err != nil {
			b.Fatal(err)
		}
	}
	key, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	arch, err := backup.Create(sub.Vault, "bench-admin", key, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := subjectsOrDie(b)
		target := fresh[len(fresh)-1].Vault
		b.StartTimer()
		if _, err := backup.Restore(arch, key, target, "bench-admin"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Overhead reports bytes-per-record per storage model as a
// custom metric (experiment E9).
func BenchmarkE9Overhead(b *testing.B) {
	const n = 300
	for _, sub := range subjectsOrDie(b) {
		b.Run(sub.Store.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh := subjectsOrDie(b)
				var s stores.Store
				for _, f := range fresh {
					if f.Store.Name() == sub.Store.Name() {
						s = f.Store
					}
				}
				recs := experiments.Corpus(n)
				b.StartTimer()
				for _, r := range recs {
					if err := s.Put(r); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(s.StorageBytes())/float64(n), "bytes/record")
			}
		})
	}
}

// BenchmarkVaultVerifyAll measures the full integrity sweep of the hybrid
// store at 500 records — the recurring cost of the paper's malicious-insider
// guarantee.
func BenchmarkVaultVerifyAll(b *testing.B) {
	subs := subjectsOrDie(b)
	sub := subs[len(subs)-1]
	for _, r := range experiments.Corpus(500) {
		if err := sub.Store.Put(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sub.Vault.VerifyAll(nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// newParallelVault builds a memory-backed vault wrapped in the bench adapter
// for the parallel-scaling benchmarks below.
func newParallelVault(b *testing.B) *core.Adapter {
	b.Helper()
	master, err := vcrypto.NewKey()
	if err != nil {
		b.Fatal(err)
	}
	v, err := core.Open(core.Config{Name: "bench-parallel", Master: master, Clock: clock.NewVirtual(experiments.Epoch)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { v.Close() })
	a, err := core.NewAdapter(v)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkPutParallel measures multi-goroutine create throughput through the
// striped lock manager: RunParallel fans Put calls across GOMAXPROCS workers,
// each writing distinct record IDs so only the shared append structures
// (WAL-less memory mode: Merkle log, audit chain, index) serialize.
func BenchmarkPutParallel(b *testing.B) {
	a := newParallelVault(b)
	var ctr atomic.Uint64
	gen := ehr.NewGenerator(7, experiments.Epoch)
	proto := gen.Corpus(1)[0]
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := proto
			rec.ID = fmt.Sprintf("par-put-%d", ctr.Add(1))
			rec.MRN = "mrn-" + rec.ID
			if err := a.Put(rec); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkGetParallel measures the parallel read path: a fixed working set
// is written once, then RunParallel issues Gets that hold only shared stripe
// locks, so reads on different records proceed concurrently.
func BenchmarkGetParallel(b *testing.B) {
	a := newParallelVault(b)
	const working = 256
	gen := ehr.NewGenerator(11, experiments.Epoch)
	ids := make([]string, working)
	for i, rec := range gen.Corpus(working) {
		rec.ID = fmt.Sprintf("par-get-%d", i)
		rec.MRN = "mrn-" + rec.ID
		ids[i] = rec.ID
		if err := a.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Uint64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := ids[ctr.Add(1)%working]
			if _, err := a.Get(id); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
