// Patient rights: the HIPAA-facing workflows the paper's requirements exist
// to serve. A patient (through the compliance office) exercises the right of
// access, requests an accounting of disclosures — every hand that touched
// their chart, denials and emergency accesses included — requests a
// correction, and walks away with a cryptographic proof, checkable without
// trusting the hospital, that the record they saw is the one the vault
// committed to.
//
//	go run ./examples/patient_rights
package main

import (
	"fmt"
	"log"
	"time"

	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/vcrypto"
)

func main() {
	master, err := vcrypto.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	vc := clock.NewVirtual(time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC))
	vault, err := core.Open(core.Config{Name: "lakeside-clinic", Master: master, Clock: vc})
	if err != nil {
		log.Fatal(err)
	}
	defer vault.Close()
	az := vault.Authz()
	for _, role := range authz.StandardRoles() {
		az.DefineRole(role)
	}
	for id, role := range map[string]string{
		"dr-adams": "physician", "nurse-kim": "nurse",
		"clerk-roy": "billing-clerk", "officer-lau": "compliance-officer",
	} {
		if err := az.AddPrincipal(id, role); err != nil {
			log.Fatal(err)
		}
	}

	// The patient's chart accumulates over several visits.
	const mrn = "mrn-31337"
	mk := func(enc int, title, body string) ehr.Record {
		return ehr.Record{
			ID: fmt.Sprintf("%s/enc-%d", mrn, enc), MRN: mrn,
			Patient: "Imani Okafor", Category: ehr.CategoryClinical,
			Author: "dr-adams", CreatedAt: vc.Now(), Title: title, Body: body,
		}
	}
	visits := []ehr.Record{
		mk(0, "Initial visit", "Patient reports recurring migraines. Prescribed triptan therapy."),
		mk(1, "Follow-up", "Migraines reduced in frequency. Continue current regimen."),
	}
	for _, rec := range visits {
		if _, err := vault.Put("dr-adams", rec); err != nil {
			log.Fatal(err)
		}
		vc.Advance(30 * 24 * time.Hour)
	}
	// Assorted accesses over the months, legitimate and not.
	vault.Get("nurse-kim", visits[0].ID)
	vault.Get("dr-adams", visits[1].ID)
	vault.Get("clerk-roy", visits[0].ID) // denied: billing cannot read clinical
	if err := vault.BreakGlass("clerk-roy", "night-shift emergency contact lookup", 15*time.Minute); err != nil {
		log.Fatal(err)
	}
	vault.Get("clerk-roy", visits[0].ID) // emergency read, flagged

	// ---- right of access ----
	ids, err := vault.PatientRecords("dr-adams", mrn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("right of access: patient %s has %d records: %v\n\n", mrn, len(ids), ids)

	// ---- accounting of disclosures (§164.528) ----
	fmt.Println("accounting of disclosures (compiled by officer-lau):")
	disclosures, err := vault.AccountingOfDisclosures("officer-lau", mrn)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range disclosures {
		flag := ""
		if d.BreakGlass {
			flag = "  << EMERGENCY ACCESS"
		}
		fmt.Printf("  %s  %-11s %-8s %s [%s]%s\n",
			d.Timestamp.Format("2006-01-02 15:04"), d.Actor, d.Action, d.Record, d.Outcome, flag)
	}

	// ---- right to request correction ----
	corrected := visits[0]
	corrected.Body = "Patient reports recurring migraines. Prescribed triptan therapy. AMENDMENT: dosage recorded incorrectly at intake; corrected per patient request."
	ver, err := vault.Correct("dr-adams", corrected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncorrection filed at patient's request: %s now v%d (v1 preserved)\n", corrected.ID, ver.Number)

	// ---- verifiable read ----
	// The patient's advocate wants more than the hospital's word: a proof
	// that the correction they received is what the vault committed to,
	// checkable with only the vault's public key.
	proof, err := vault.ProveVersion("dr-adams", corrected.ID, ver.Number)
	if err != nil {
		log.Fatal(err)
	}
	// …time passes, the advocate verifies offline…
	if err := core.VerifyVersionProof(vault.PublicKey(), proof, nil); err != nil {
		log.Fatalf("proof rejected: %v", err)
	}
	fmt.Printf("\nverifiable read: version %d of %s is committed as leaf %d of the signed tree (size %d)\n",
		proof.Version, proof.RecordID, proof.LeafIndex, proof.Head.Size)
	fmt.Println("the proof verifies with the vault's public key alone — no trust in the operator required")

	// A forged proof — say, the hospital trying to pass v1 off as the
	// corrected version — fails.
	forged := proof
	forged.Version = 1
	if err := core.VerifyVersionProof(vault.PublicKey(), forged, nil); err != nil {
		fmt.Println("a forged proof (claiming v1 is the correction) is rejected, as it must be")
	}
}
