// Migration: a hospital retires its storage system after years of service
// and must move every record — with full version history and a verifiable
// chain of custody — to the replacement system, as the paper's long-retention
// requirement demands ("the resulting migration to new servers must be
// trustworthy, and verifiable"). A tampering transport is also demonstrated:
// nothing corrupted crosses over.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"time"

	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/migrate"
	"medvault/internal/vcrypto"
)

func newVault(name string, vc *clock.Virtual) (*core.Vault, error) {
	master, err := vcrypto.NewKey()
	if err != nil {
		return nil, err
	}
	v, err := core.Open(core.Config{Name: name, Master: master, Clock: vc})
	if err != nil {
		return nil, err
	}
	az := v.Authz()
	for _, role := range authz.StandardRoles() {
		az.DefineRole(role)
	}
	for id, role := range map[string]string{
		"dr-okafor": "physician", "arch-ruiz": "archivist", "officer-ng": "compliance-officer",
	} {
		if err := az.AddPrincipal(id, role); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func main() {
	vc := clock.NewVirtual(time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC))
	oldSystem, err := newVault("mercy-general-legacy", vc)
	if err != nil {
		log.Fatal(err)
	}
	defer oldSystem.Close()

	// Years of records accumulate on the legacy system.
	gen := ehr.NewGenerator(7, vc.Now())
	var ids []string
	for len(ids) < 12 {
		rec := gen.Next()
		if rec.Category == ehr.CategoryBilling || rec.Category == ehr.CategoryOccupational {
			continue
		}
		if _, err := oldSystem.Put("dr-okafor", rec); err != nil {
			log.Fatal(err)
		}
		if len(ids)%4 == 0 { // some records were corrected over the years
			if _, err := oldSystem.Correct("dr-okafor", gen.Correction(rec)); err != nil {
				log.Fatal(err)
			}
		}
		ids = append(ids, rec.ID)
	}
	fmt.Printf("legacy system holds %d records\n", oldSystem.Len())

	// Six years later the hardware is end-of-life.
	vc.Advance(6 * 365 * 24 * time.Hour)
	newSystem, err := newVault("mercy-general-2026", vc)
	if err != nil {
		log.Fatal(err)
	}
	defer newSystem.Close()

	// Migrate: the source signs a manifest over every record's full
	// history; the target verifies before ingesting a single byte.
	rep, err := migrate.Run(oldSystem, newSystem, ids, migrate.Options{Actor: "arch-ruiz"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrated %d records (%d bytes transferred), %d failures\n",
		len(rep.Migrated), rep.BytesSent, len(rep.Failed))

	// The new system passes a full integrity sweep, version history intact.
	if _, err := newSystem.VerifyAll(nil, nil); err != nil {
		log.Fatalf("target integrity failure: %v", err)
	}
	hist, err := newSystem.History("dr-okafor", ids[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record %s arrived with %d versions\n", ids[0], len(hist))

	// The custody chain now spans both systems — HIPAA's record of
	// movements, cryptographically signed by each custodian.
	chain, err := newSystem.Provenance("officer-ng", ids[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain of custody:")
	for _, e := range chain {
		peer := ""
		if e.Peer != "" {
			peer = " -> " + e.Peer
		}
		fmt.Printf("  #%d %-12s by %-10s on %s%s\n", e.Index, e.Type, e.Actor, e.System, peer)
	}

	// A hostile transport cannot sneak altered records through: flip one
	// byte per bundle and every record is rejected at the target.
	evilTarget, err := newVault("attacker-site", vc)
	if err != nil {
		log.Fatal(err)
	}
	defer evilTarget.Close()
	corrupting := func(b []byte) []byte {
		out := append([]byte(nil), b...)
		out[len(out)/2] ^= 0x01
		return out
	}
	rep2, err := migrate.Run(oldSystem, evilTarget, ids[:4], migrate.Options{Actor: "arch-ruiz", Channel: corrupting})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntampering transport: %d migrated, %d rejected (all tampering detected)\n",
		len(rep2.Migrated), len(rep2.Failed))
}
