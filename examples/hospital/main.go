// Hospital workflow: a multi-actor clinical day demonstrating role-based
// access with minimum-necessary scoping, denied-access auditing, corrections,
// and break-glass emergency access with after-the-fact review.
//
//	go run ./examples/hospital
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"medvault/internal/audit"
	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/vcrypto"
)

func main() {
	master, err := vcrypto.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	vc := clock.NewVirtual(time.Date(2026, 7, 6, 8, 0, 0, 0, time.UTC))
	vault, err := core.Open(core.Config{Name: "st-elsewhere", Master: master, Clock: vc})
	if err != nil {
		log.Fatal(err)
	}
	defer vault.Close()

	// Staff: a physician, a nurse, a billing clerk, and a compliance officer.
	az := vault.Authz()
	for _, role := range authz.StandardRoles() {
		az.DefineRole(role)
	}
	staff := map[string]string{
		"dr-grey":     "physician",
		"nurse-park":  "nurse",
		"clerk-odell": "billing-clerk",
		"officer-ng":  "compliance-officer",
	}
	for id, role := range staff {
		if err := az.AddPrincipal(id, role); err != nil {
			log.Fatal(err)
		}
	}

	// Morning rounds: the physician writes clinical notes.
	patients := []ehr.Record{
		{
			ID: "mrn-1001/enc-0", Patient: "Miles Dyson", MRN: "mrn-1001",
			Category: ehr.CategoryClinical, Author: "dr-grey", CreatedAt: vc.Now(),
			Title: "Admission note",
			Body:  "Admitted with chest pain. ECG ordered. History of hypertension.",
			Codes: []string{"R07.9", "I10"},
		},
		{
			ID: "mrn-1002/enc-0", Patient: "Sarah Connor", MRN: "mrn-1002",
			Category: ehr.CategoryClinical, Author: "dr-grey", CreatedAt: vc.Now(),
			Title: "Follow-up",
			Body:  "Asthma well controlled on current inhaler regimen.",
			Codes: []string{"J45"},
		},
	}
	for _, rec := range patients {
		if _, err := vault.Put("dr-grey", rec); err != nil {
			log.Fatal(err)
		}
	}
	// Billing files its own record — a different category.
	bill := ehr.Record{
		ID: "mrn-1001/bill-0", Patient: "Miles Dyson", MRN: "mrn-1001",
		Category: ehr.CategoryBilling, Author: "clerk-odell", CreatedAt: vc.Now(),
		Title: "Claim 2026-07-4471", Body: "Admission billing, pending insurer response.",
	}
	if _, err := vault.Put("clerk-odell", bill); err != nil {
		log.Fatal(err)
	}
	fmt.Println("• records written: 2 clinical (dr-grey), 1 billing (clerk-odell)")

	// Minimum necessary in action: the clerk cannot open clinical charts,
	// and the nurse cannot see billing. Every denial is audited.
	if _, _, err := vault.Get("clerk-odell", "mrn-1001/enc-0"); errors.Is(err, core.ErrDenied) {
		fmt.Println("• clerk denied access to clinical chart (audited)")
	}
	if _, _, err := vault.Get("nurse-park", "mrn-1001/bill-0"); errors.Is(err, core.ErrDenied) {
		fmt.Println("• nurse denied access to billing record (audited)")
	}

	// The nurse reads the chart she is allowed to see.
	if _, _, err := vault.Get("nurse-park", "mrn-1001/enc-0"); err != nil {
		log.Fatal(err)
	}

	// The patient requests a correction: the ECG note was transcribed wrong.
	corrected := patients[0]
	corrected.Body = "Admitted with chest pain. ECG shows normal sinus rhythm. History of hypertension. AMENDMENT: prior note omitted the ECG result."
	ver, err := vault.Correct("dr-grey", corrected)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("• correction filed: %s now at v%d, v1 preserved\n", corrected.ID, ver.Number)

	// 02:00: Dyson crashes. The on-call clerk is the only staffer at the
	// desk and needs his chart NOW. Break-glass: time-boxed, reasoned,
	// loudly audited.
	vc.Advance(18 * time.Hour)
	if err := vault.BreakGlass("clerk-odell", "code blue bed 12, on-call access", 30*time.Minute); err != nil {
		log.Fatal(err)
	}
	if _, _, err := vault.Get("clerk-odell", "mrn-1001/enc-0"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("• break-glass: clerk read the chart under an emergency grant")
	vc.Advance(time.Hour)
	if _, _, err := vault.Get("clerk-odell", "mrn-1001/enc-0"); errors.Is(err, core.ErrDenied) {
		fmt.Println("• grant expired: access denied again")
	}

	// Next morning: compliance review. Who was denied? Who broke glass?
	fmt.Println("\ncompliance review (officer-ng):")
	denied, err := vault.AuditEvents("officer-ng", audit.Query{DeniedOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d denied attempts:\n", len(denied))
	for _, e := range denied {
		fmt.Printf("    %s\n", e)
	}
	emergencies, err := vault.AuditEvents("officer-ng", audit.Query{Action: audit.ActionBreakGlass})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d break-glass events:\n", len(emergencies))
	for _, e := range emergencies {
		fmt.Printf("    %s\n", e)
	}

	// And the trail itself is tamper-evident.
	report, err := vault.VerifyAll(nil, nil)
	if err != nil {
		log.Fatalf("INTEGRITY FAILURE: %v", err)
	}
	fmt.Printf("\nintegrity sweep clean: %d records, %d versions, %d audit events\n",
		report.RecordsChecked, report.VersionsChecked, report.AuditEvents)
}
