// Quickstart: create a vault, store a record, read it back, correct it, and
// verify the whole store end-to-end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"medvault/internal/authz"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/vcrypto"
)

func main() {
	// Every vault needs a root secret. In production this comes from a KMS;
	// here we generate one for the demo's lifetime.
	master, err := vcrypto.NewKey()
	if err != nil {
		log.Fatal(err)
	}

	// A memory-backed vault (pass Config.Dir for durable storage).
	vault, err := core.Open(core.Config{Name: "quickstart-clinic", Master: master})
	if err != nil {
		log.Fatal(err)
	}
	defer vault.Close()

	// Access control: define roles, register staff.
	az := vault.Authz()
	for _, role := range authz.StandardRoles() {
		az.DefineRole(role)
	}
	if err := az.AddPrincipal("dr-chen", "physician"); err != nil {
		log.Fatal(err)
	}

	// Store a record. The vault encrypts it under its own data key, commits
	// it to the Merkle log, indexes it, audits the write, and starts its
	// retention clock.
	rec := ehr.Record{
		ID:        "mrn-000001/enc-0",
		Patient:   "Ada Lovelace",
		MRN:       "mrn-000001",
		Category:  ehr.CategoryClinical,
		Author:    "dr-chen",
		CreatedAt: time.Now().UTC(),
		Title:     "Initial consultation",
		Body:      "Patient presents with elevated blood pressure. Suspected hypertension.",
		Codes:     []string{"I10"},
	}
	ver, err := vault.Put("dr-chen", rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored %s as version %d (commitment leaf %d)\n", rec.ID, ver.Number, ver.LeafIndex)

	// Read it back: hash-verified against the commitment before decryption.
	got, _, err := vault.Get("dr-chen", rec.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", got.Title)

	// Patients may request corrections (HIPAA right to amend). Corrections
	// never overwrite: they append a new version.
	rec.Body = "Confirmed hypertension stage 1. AMENDMENT: prior note said 'suspected'."
	ver2, err := vault.Correct("dr-chen", rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corrected to version %d; version 1 remains readable:\n", ver2.Number)
	v1, _, err := vault.GetVersion("dr-chen", rec.ID, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  v1: %q\n", v1.Body)

	// Keyword search through the encrypted index.
	hits, err := vault.Search("dr-chen", "hypertension")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search(hypertension) -> %v\n", hits)

	// Full integrity sweep: ciphertext hashes, Merkle inclusion proofs,
	// audit chain, custody chains.
	report, err := vault.VerifyAll(nil, nil)
	if err != nil {
		log.Fatalf("INTEGRITY FAILURE: %v", err)
	}
	fmt.Printf("verified: %d record(s), %d version(s), %d audit event(s)\n",
		report.RecordsChecked, report.VersionsChecked, report.AuditEvents)

	// Remember the signed tree head off-system; future verifications against
	// it detect history rewriting.
	head := vault.Head()
	fmt.Printf("signed tree head: size=%d root=%x…\n", head.Size, head.Root[:8])
}
