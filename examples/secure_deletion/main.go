// Secure deletion: records reach the end of their mandated retention period
// (OSHA's 30-year occupational records among them), are found by the expiry
// sweep, survive a legal hold, and are finally crypto-shredded — after which
// no plaintext is recoverable from any byte the system ever wrote, which is
// HIPAA's media-disposal and re-use requirement (§164.310(d)(2)).
//
//	go run ./examples/secure_deletion
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"time"

	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/vcrypto"
)

const year = 365 * 24 * time.Hour

func main() {
	master, err := vcrypto.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	vc := clock.NewVirtual(start)
	vault, err := core.Open(core.Config{Name: "records-office", Master: master, Clock: vc})
	if err != nil {
		log.Fatal(err)
	}
	defer vault.Close()
	az := vault.Authz()
	for _, role := range authz.StandardRoles() {
		az.DefineRole(role)
	}
	// Occupational-health records need their own role: none of the standard
	// clinical roles may touch OSHA exposure records (minimum necessary).
	az.DefineRole(authz.NewRole("occ-health", []authz.Action{
		authz.ActRead, authz.ActWrite, authz.ActCorrect, authz.ActSearch,
	}, "occupational"))
	for id, role := range map[string]string{
		"dr-wu": "physician", "arch-diaz": "archivist", "clerk-ma": "billing-clerk",
		"oh-nurse": "occ-health",
	} {
		if err := az.AddPrincipal(id, role); err != nil {
			log.Fatal(err)
		}
	}
	adapter, err := core.NewAdapter(vault) // for the raw-bytes residue probe
	if err != nil {
		log.Fatal(err)
	}

	// A mix of schedules: clinical (6y), billing (7y), occupational (30y).
	mk := func(id string, cat ehr.Category, patient, body string) ehr.Record {
		return ehr.Record{
			ID: id, Patient: patient, MRN: id[:8], Category: cat,
			Author: "dr-wu", CreatedAt: start, Title: "note", Body: body,
		}
	}
	clinical := mk("mrn-2001/enc-0", ehr.CategoryClinical, "Noor Haddad", "migraine management plan")
	billing := mk("mrn-2001/bill-0", ehr.CategoryBilling, "Noor Haddad", "claim settled in full")
	exposure := mk("mrn-2002/occ-0", ehr.CategoryOccupational, "Viktor Petrov", "asbestos exposure assessment")
	if _, err := vault.Put("dr-wu", clinical); err != nil {
		log.Fatal(err)
	}
	if _, err := vault.Put("clerk-ma", billing); err != nil {
		log.Fatal(err)
	}
	if _, err := vault.Put("oh-nurse", exposure); err != nil {
		log.Fatal(err)
	}
	for _, id := range []string{clinical.ID, billing.ID, exposure.ID} {
		exp, err := vault.Retention().ExpiresAt(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s retained until %s\n", id, exp.Format("2006-01-02"))
	}

	// Premature destruction is refused — keeping records is as mandatory as
	// eventually destroying them.
	if err := vault.Shred("arch-diaz", clinical.ID); err != nil {
		fmt.Printf("\nyear 0 shred attempt refused: %v\n", err)
	}

	// Eight years on: the sweep finds the clinical and billing records.
	vc.Advance(8 * year)
	fmt.Printf("\nyear 8 expiry sweep: %v\n", vault.ExpiredRecords())

	// Litigation intervenes: legal hold on the clinical record. Placing it
	// through the vault makes it durable and writes it to the audit trail.
	if err := vault.PlaceHold("arch-diaz", clinical.ID, "Haddad v. Records Office, case 26-441"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legal hold placed; sweep now returns: %v\n", vault.ExpiredRecords())
	if err := vault.Shred("arch-diaz", clinical.ID); err != nil {
		fmt.Printf("shred under hold refused: %v\n", err)
	}

	// Case closes; dispose of the billing record and (after release) the
	// clinical one. Shredding destroys the per-record data key: the
	// ciphertext still sits in the append-only log, unreadable forever.
	if err := vault.ReleaseHold("arch-diaz", clinical.ID); err != nil {
		log.Fatal(err)
	}
	for _, id := range []string{billing.ID, clinical.ID} {
		if err := vault.Shred("arch-diaz", id); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shredded %s\n", id)
	}

	// The residue probe: scan EVERY byte the system ever wrote (freed
	// sectors included) for the disposed patients' data.
	raw := adapter.RawBytes()
	for _, probe := range []string{"Noor Haddad", "migraine", "claim settled"} {
		if bytes.Contains(raw, []byte(probe)) {
			log.Fatalf("RESIDUE FOUND: %q recoverable from disposed media", probe)
		}
	}
	fmt.Println("media residue probe: no disposed plaintext recoverable")

	// The occupational record is untouched — 22 more years to go.
	if _, _, err := vault.Get("oh-nurse", exposure.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("occupational record intact (OSHA 30-year rule); sweep: %v\n", vault.ExpiredRecords())

	// Reads of the disposed records fail with a distinct, truthful error.
	if _, _, err := vault.Get("dr-wu", clinical.ID); errors.Is(err, core.ErrShredded) {
		fmt.Println("disposed record reads report 'securely deleted', not 'not found'")
	}

	// And the vault still verifies: destruction is accounted for, not hidden.
	report, err := vault.VerifyAll(nil, nil)
	if err != nil {
		log.Fatalf("integrity failure after disposal: %v", err)
	}
	fmt.Printf("post-disposal integrity sweep clean (%d records, %d versions)\n",
		report.RecordsChecked, report.VersionsChecked)
}
