// Breach investigation: a malicious insider with direct access to the
// storage layer rewrites a record's bytes beneath the query processor — the
// exact threat the paper says encryption-only and relational systems cannot
// even see. The vault's commitment log exposes the tampering, and the audit
// and custody trails support the forensic walk that follows.
//
//	go run ./examples/breach_investigation
package main

import (
	"fmt"
	"log"
	"time"

	"medvault/internal/audit"
	"medvault/internal/authz"
	"medvault/internal/clock"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/merkle"
	"medvault/internal/vcrypto"
)

func main() {
	master, err := vcrypto.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	vc := clock.NewVirtual(time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC))
	vault, err := core.Open(core.Config{Name: "county-med", Master: master, Clock: vc})
	if err != nil {
		log.Fatal(err)
	}
	defer vault.Close()
	az := vault.Authz()
	for _, role := range authz.StandardRoles() {
		az.DefineRole(role)
	}
	for id, role := range map[string]string{
		"dr-ibarra": "physician", "officer-cho": "compliance-officer",
	} {
		if err := az.AddPrincipal(id, role); err != nil {
			log.Fatal(err)
		}
	}
	// The attack surface needs the adapter's disk-level hooks.
	adapter, err := core.NewAdapter(vault)
	if err != nil {
		log.Fatal(err)
	}

	// Normal operation: records accumulate, checkpoints are taken.
	gen := ehr.NewGenerator(11, vc.Now())
	var ids []string
	for len(ids) < 8 {
		rec := gen.Next()
		if rec.Category != ehr.CategoryClinical {
			continue
		}
		if _, err := vault.Put("dr-ibarra", rec); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	// The compliance office stores the signed tree head and an audit
	// checkpoint OFF-SYSTEM — this is the anchor the insider cannot reach.
	rememberedHead := vault.Head()
	rememberedCP := vault.AuditCheckpoint()
	fmt.Printf("baseline: %d records; off-system anchors stored (tree size %d, audit seq %d)\n",
		vault.Len(), rememberedHead.Size, rememberedCP.Seq)

	// ---- the attack ----
	// A storage administrator, bypassing the API entirely, rewrites the
	// ciphertext of one record on disk (format-aware: the framing CRC is
	// recomputed, so the block layer sees nothing wrong).
	victim := ids[3]
	vc.Advance(48 * time.Hour)
	err = adapter.TamperRecord(victim, func(b []byte) []byte {
		b[len(b)/3] ^= 0x5A
		return b
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninsider rewrote the stored bytes of %s (valid CRC, no API call, no audit event)\n", victim)

	// ---- detection ----
	report, err := vault.VerifyAll(
		[]merkle.SignedTreeHead{rememberedHead},
		[]audit.Checkpoint{rememberedCP},
	)
	if err != nil {
		fmt.Printf("scheduled integrity sweep: TAMPERING DETECTED\n  %v\n", err)
	} else {
		log.Fatalf("attack went undetected (report %+v) — this must not happen", report)
	}

	// A read of the victim record also fails loudly rather than serving
	// falsified EPHI.
	if _, _, err := vault.Get("dr-ibarra", victim); err != nil {
		fmt.Printf("read of %s refused: %v\n", victim, err)
	}

	// ---- forensics ----
	// Who touched this record through legitimate channels, and when?
	fmt.Println("\nforensic audit walk (officer-cho):")
	events, err := vault.AuditEvents("officer-cho", audit.Query{Record: victim})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range events {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println("no legitimate write after creation -> the modification bypassed the API: storage-layer compromise confirmed.")

	// The custody chain shows the record's full legitimate lifecycle.
	chain, err := vault.Provenance("officer-cho", victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("custody chain:")
	for _, e := range chain {
		fmt.Printf("  #%d %s by %s on %s\n", e.Index, e.Type, e.Actor, e.System)
	}

	// Recovery in practice: restore the record from the latest verified
	// backup (see examples/secure_deletion and the backup package) and
	// rotate storage-layer credentials. The unaffected records still verify:
	fmt.Println("\nuntouched records still verify individually:")
	for _, id := range ids[:3] {
		if _, _, err := vault.Get("dr-ibarra", id); err != nil {
			log.Fatalf("collateral damage on %s: %v", id, err)
		}
	}
	fmt.Println("  ok — blast radius limited to the attacked record")
}
