package main

// Process-level observability plumbing shared by the primary and follower
// paths: build-info gauges, the anomaly watchdog, and postmortem capture
// (panic hook, WAL-wedge anomaly, SIGQUIT).

import (
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"time"

	"medvault/internal/faultfs"
	"medvault/internal/obs"
)

// version is stamped by the build (-ldflags "-X main.version=v1.2.3");
// a bare `go build` reports dev.
var version = "dev"

// registerBuildInfo publishes the conventional build-identity series: a
// constant-1 info gauge whose labels carry the facts, and the process start
// time so dashboards can compute uptime and spot silent restarts.
func registerBuildInfo(shards int) {
	obs.Default.Gauge("medvault_build_info",
		"Build metadata carried in labels; the value is always 1.",
		obs.L("version", version),
		obs.L("go_version", runtime.Version()),
		obs.L("shards", strconv.Itoa(shards))).Set(1)
	obs.Default.Gauge("process_start_time_seconds",
		"Unix time the process started.").Set(float64(time.Now().Unix()))
}

// postmortems writes crash bundles into the data dir, rate-limited so a
// panic storm or a flapping anomaly cannot fill the disk with near-identical
// bundles while the one that matters is already on disk.
type postmortems struct {
	dir string
	log *slog.Logger
	wd  *obs.Watchdog // may be nil until startWatchdog wires it

	mu   sync.Mutex
	last time.Time
}

const postmortemMinGap = 30 * time.Second

func (p *postmortems) write(reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.last.IsZero() && time.Since(p.last) < postmortemMinGap {
		p.log.Warn("postmortem suppressed by rate limit", "reason", reason)
		return
	}
	p.last = time.Now()
	path, err := obs.WritePostmortem(faultfs.OS{}, p.dir, reason, obs.PostmortemConfig{Watchdog: p.wd})
	if err != nil {
		p.log.Error("postmortem write failed", "reason", reason, "err", err.Error())
		return
	}
	p.log.Info("postmortem bundle written", "path", path, "reason", reason)
}

// startWatchdog runs the anomaly watchdog for this process. Every anomaly
// streak is logged; a WAL wedge — the one anomaly that means durable commits
// are failing right now — also captures a postmortem bundle, because the
// operator will want the flight tail from the moment it happened, not from
// whenever they get paged. Returns the watchdog (for /healthz detail) and
// its stop function.
func startWatchdog(pm *postmortems, logger *slog.Logger) (*obs.Watchdog, func()) {
	wd := obs.NewWatchdog(obs.WatchdogConfig{
		OnAnomaly: func(a obs.Anomaly) {
			logger.Warn("watchdog anomaly", "kind", a.Kind, "detail", a.Detail)
			if a.Kind == "wal_wedge" {
				pm.write("watchdog: " + a.Kind + ": " + a.Detail)
			}
		},
	})
	pm.wd = wd
	return wd, wd.Start()
}

// notifySIGQUIT turns SIGQUIT into a postmortem bundle plus exit(2) —
// the operator's "dump everything and die" lever, like the Go runtime's
// default SIGQUIT stack dump but durable and structured. Registering the
// handler replaces the runtime's default; the bundle embeds the same
// goroutine stacks, so nothing is lost.
func notifySIGQUIT(pm *postmortems, logger *slog.Logger) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		<-ch
		logger.Error("SIGQUIT received; writing postmortem bundle and exiting")
		pm.write("SIGQUIT")
		os.Exit(2)
	}()
}
