package main

import (
	"strings"
	"testing"

	"medvault/internal/vaultcfg"
)

func TestRunValidation(t *testing.T) {
	if err := run("", "x", ":0", "n", "", "", "", "", vaultcfg.Options{}); err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Errorf("missing dir: %v", err)
	}
	if err := run(t.TempDir(), "nothex", ":0", "n", "", "", "", "", vaultcfg.Options{}); err == nil {
		t.Errorf("bad key accepted")
	}
	if err := run(t.TempDir(), "x", ":0", "n", "cert-only", "", "", "", vaultcfg.Options{}); err == nil || !strings.Contains(err.Error(), "together") {
		t.Errorf("lopsided TLS flags: %v", err)
	}
	if err := runFollower("", "x", ":0", ":0", "n", "", "", vaultcfg.Options{}); err == nil || !strings.Contains(err.Error(), "-dir") {
		t.Errorf("follower missing dir: %v", err)
	}
	if err := runFollower(t.TempDir(), "nothex", ":0", ":0", "n", "", "", vaultcfg.Options{}); err == nil {
		t.Errorf("follower bad key accepted")
	}
}

func TestRunRefusesBadAddr(t *testing.T) {
	dir := t.TempDir()
	_, hexKey, err := vaultcfg.GenerateMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	// An unparseable listen address fails fast instead of serving.
	if err := run(dir, hexKey, "not-an-addr", "n", "", "", "", "", vaultcfg.Options{}); err == nil {
		t.Error("bad address accepted")
	}
}
