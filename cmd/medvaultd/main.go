// Command medvaultd serves a durable MedVault directory over HTTP/JSON.
//
// Usage:
//
//	medvaultd -dir DIR -key HEX [-addr :8600] [-tls-cert crt -tls-key key]
//
// The master key may also come from $MEDVAULT_KEY. Principals are managed
// with 'medvault grant' (the server reads principals.conf at startup).
// With -tls-cert/-tls-key the server speaks HTTPS — the paper requires
// encryption on "the data pathways leading to and out", not just at rest.
// GET /metrics exposes Prometheus-format counters and latency histograms
// for every vault mechanism (core ops, HTTP routes, WAL fsync, blockstore
// I/O, crypto, index, audit). See internal/httpapi for the route list.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// are drained (bounded by a timeout), then the vault is closed so the WAL
// is checkpointed and the final metadata snapshot is written.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"medvault/internal/httpapi"
	"medvault/internal/vaultcfg"
)

func main() {
	var (
		dir     = flag.String("dir", "", "vault directory (required)")
		key     = flag.String("key", os.Getenv("MEDVAULT_KEY"), "master key, 64 hex chars (or $MEDVAULT_KEY)")
		addr    = flag.String("addr", ":8600", "listen address")
		name    = flag.String("name", "medvaultd", "system name recorded in custody chains")
		tlsCert = flag.String("tls-cert", "", "TLS certificate file (enables HTTPS with -tls-key)")
		tlsKey  = flag.String("tls-key", "", "TLS private key file")
	)
	flag.Parse()
	if err := run(*dir, *key, *addr, *name, *tlsCert, *tlsKey); err != nil {
		fmt.Fprintln(os.Stderr, "medvaultd:", err)
		os.Exit(1)
	}
}

func run(dir, key, addr, name string, tlsCert, tlsKey string) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if (tlsCert == "") != (tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key must be given together")
	}
	master, err := vaultcfg.ParseMasterKey(key)
	if err != nil {
		return err
	}
	// Bind before opening the vault so a bad address fails fast without
	// churning the vault's recovery path.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	v, err := vaultcfg.Open(dir, name, master)
	if err != nil {
		ln.Close()
		return err
	}
	defer v.Close()

	// Slowloris-resistant timeouts: a client that trickles headers or never
	// reads its response cannot pin a connection (and its vault resources)
	// forever. Export streams are the largest responses; WriteTimeout is
	// sized for them.
	srv := &http.Server{
		Handler:           httpapi.New(v),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if tlsCert != "" {
			log.Printf("medvaultd: serving vault %s (%d records) on %s (TLS)", dir, v.Len(), addr)
			errc <- srv.ServeTLS(ln, tlsCert, tlsKey)
			return
		}
		log.Printf("medvaultd: serving vault %s (%d records) on %s (PLAINTEXT transport — use -tls-cert/-tls-key in production)", dir, v.Len(), addr)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		log.Printf("medvaultd: signal received, draining requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("medvaultd: drained; closing vault")
		return nil // deferred v.Close checkpoints the WAL and snapshots
	}
}
