// Command medvaultd serves a durable MedVault directory over HTTP/JSON.
//
// Usage:
//
//	medvaultd -dir DIR -key HEX [-addr :8600] [-tls-cert crt -tls-key key]
//
// The master key may also come from $MEDVAULT_KEY. Principals are managed
// with 'medvault grant' (the server reads principals.conf at startup).
// With -tls-cert/-tls-key the server speaks HTTPS — the paper requires
// encryption on "the data pathways leading to and out", not just at rest.
// GET /metrics exposes Prometheus-format counters and latency histograms
// for every vault mechanism (core ops, HTTP routes, WAL fsync, blockstore
// I/O, crypto, index, audit). See internal/httpapi for the route list.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"medvault/internal/httpapi"
	"medvault/internal/vaultcfg"
)

func main() {
	var (
		dir     = flag.String("dir", "", "vault directory (required)")
		key     = flag.String("key", os.Getenv("MEDVAULT_KEY"), "master key, 64 hex chars (or $MEDVAULT_KEY)")
		addr    = flag.String("addr", ":8600", "listen address")
		name    = flag.String("name", "medvaultd", "system name recorded in custody chains")
		tlsCert = flag.String("tls-cert", "", "TLS certificate file (enables HTTPS with -tls-key)")
		tlsKey  = flag.String("tls-key", "", "TLS private key file")
	)
	flag.Parse()
	if err := run(*dir, *key, *addr, *name, *tlsCert, *tlsKey); err != nil {
		fmt.Fprintln(os.Stderr, "medvaultd:", err)
		os.Exit(1)
	}
}

func run(dir, key, addr, name string, tlsCert, tlsKey string) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if (tlsCert == "") != (tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key must be given together")
	}
	master, err := vaultcfg.ParseMasterKey(key)
	if err != nil {
		return err
	}
	v, err := vaultcfg.Open(dir, name, master)
	if err != nil {
		return err
	}
	defer v.Close()
	handler := httpapi.New(v)
	if tlsCert != "" {
		log.Printf("medvaultd: serving vault %s (%d records) on %s (TLS)", dir, v.Len(), addr)
		return http.ListenAndServeTLS(addr, tlsCert, tlsKey, handler)
	}
	log.Printf("medvaultd: serving vault %s (%d records) on %s (PLAINTEXT transport — use -tls-cert/-tls-key in production)", dir, v.Len(), addr)
	return http.ListenAndServe(addr, handler)
}
