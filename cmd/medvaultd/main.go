// Command medvaultd serves a durable MedVault directory over HTTP/JSON.
//
// Usage:
//
//	medvaultd -dir DIR -key HEX [-addr :8600] [-tls-cert crt -tls-key key]
//	          [-debug-addr 127.0.0.1:8601]
//
// The master key may also come from $MEDVAULT_KEY. Principals are managed
// with 'medvault grant' (the server reads principals.conf at startup).
// With -tls-cert/-tls-key the server speaks HTTPS — the paper requires
// encryption on "the data pathways leading to and out", not just at rest.
// GET /metrics exposes Prometheus-format counters and latency histograms
// for every vault mechanism (core ops, HTTP routes, WAL fsync, blockstore
// I/O, crypto, index, audit), GET /debug/traces serves per-request span
// traces, and GET /debug/flight serves the in-memory flight-recorder ring.
// See internal/httpapi for the route list.
//
// -debug-addr starts a second listener (bind it to loopback) carrying
// net/http/pprof plus /debug/traces and /debug/flight, so profiling and
// trace inspection survive even when the main listener is saturated or
// firewalled.
//
// An anomaly watchdog ticks in the background: active findings appear as
// degraded detail on /healthz and as medvault_watchdog_anomalies_total.
// On a request-handler panic, a WAL wedge, or SIGQUIT the daemon writes a
// crash-atomic postmortem bundle (flight tail, goroutine stacks, metrics,
// slow traces) under DIR/postmortem/; 'medvault flight -dir DIR' decodes
// bundles and persisted flight segments offline.
//
// The server logs structured lines (log/slog, JSON to stderr): startup and
// recovery summary, one line per request with route/status/duration/trace
// ID, and shutdown progress.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// are drained (bounded by a timeout), then the vault is closed so the WAL
// is checkpointed and the final metadata snapshot is written.
//
// # Replication
//
// A warm-standby pair is two medvaultd processes:
//
//	medvaultd -dir /srv/replica -follow -repl-addr :8610 -addr :8601 -key HEX
//	medvaultd -dir /srv/vault -replicate-to standby:8610 -key HEX
//
// The primary streams every committed filesystem write to the follower and
// only acknowledges clients after the follower has the bytes a group-commit
// fsync covers; a dead link degrades to local-only operation and the
// anti-entropy timer resynchronizes on reconnect. The follower applies the
// stream into -dir and serves only /healthz, /metrics, and POST /promote
// until promoted; promotion fences the old primary's epoch, opens the
// replica as a full vault, and swaps in the complete HTTP API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"medvault/internal/core"
	"medvault/internal/faultfs"
	"medvault/internal/httpapi"
	"medvault/internal/obs"
	"medvault/internal/repl"
	"medvault/internal/vaultcfg"
)

func main() {
	var (
		dir       = flag.String("dir", "", "vault directory (required)")
		key       = flag.String("key", os.Getenv("MEDVAULT_KEY"), "master key, 64 hex chars (or $MEDVAULT_KEY)")
		addr      = flag.String("addr", ":8600", "listen address")
		name      = flag.String("name", "medvaultd", "system name recorded in custody chains")
		tlsCert   = flag.String("tls-cert", "", "TLS certificate file (enables HTTPS with -tls-key)")
		tlsKey    = flag.String("tls-key", "", "TLS private key file")
		debugAddr = flag.String("debug-addr", "", "optional debug listener (pprof + /debug/traces); bind to loopback")
		dekCache  = flag.Int("dek-cache", 0, "plaintext-DEK cache entries (0 = default, -1 disables)")
		blockMB   = flag.Int("block-cache-mb", 0, "ciphertext block cache size in MiB (0 = default, -1 disables)")
		negCache  = flag.Int("neg-cache", 0, "negative-lookup cache entries (0 = default, -1 disables)")
		shards    = flag.Int("shards", 0, "shard count for a new vault directory (0 adopts the existing layout)")

		replicateTo = flag.String("replicate-to", "", "stream every committed write to the follower's replication listener at this address")
		follow      = flag.Bool("follow", false, "follower mode: apply a primary's stream into -dir; only /healthz, /metrics, POST /promote until promoted")
		replAddr    = flag.String("repl-addr", ":8610", "follower mode: replication stream listen address")
	)
	flag.Parse()
	// The MiB flag scales to bytes only for positive sizes; 0 (default) and
	// the -1 disable sentinel pass through for vaultcfg to validate, so
	// "-block-cache-mb -7" is rejected instead of shifting into a surprise.
	blockBytes := int64(*blockMB)
	if blockBytes > 0 {
		blockBytes <<= 20
	}
	opt := vaultcfg.Options{
		DEKCacheEntries: *dekCache,
		BlockCacheBytes: blockBytes,
		NegCacheEntries: *negCache,
		Shards:          *shards,
	}
	if *follow {
		if *replicateTo != "" {
			fmt.Fprintln(os.Stderr, "medvaultd: -follow and -replicate-to are mutually exclusive")
			os.Exit(1)
		}
		if err := runFollower(*dir, *key, *addr, *replAddr, *name, *tlsCert, *tlsKey, opt); err != nil {
			fmt.Fprintln(os.Stderr, "medvaultd:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*dir, *key, *addr, *name, *tlsCert, *tlsKey, *debugAddr, *replicateTo, opt); err != nil {
		fmt.Fprintln(os.Stderr, "medvaultd:", err)
		os.Exit(1)
	}
}

func run(dir, key, addr, name string, tlsCert, tlsKey, debugAddr, replicateTo string, opt vaultcfg.Options) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if (tlsCert == "") != (tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key must be given together")
	}
	master, err := vaultcfg.ParseMasterKey(key)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	// Bind before opening the vault so a bad address fails fast without
	// churning the vault's recovery path.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var capture *repl.Capture
	if replicateTo != "" {
		// The follower must be reachable at startup — its handshake resyncs
		// the replica to this directory before the first write ships. After
		// that, a dead link degrades to local-only operation (writes keep
		// committing) and the anti-entropy timer reconnects and resyncs.
		dir = filepath.Clean(dir)
		if err := os.MkdirAll(dir, 0o700); err != nil {
			ln.Close()
			return err
		}
		raw := faultfs.OS{}
		sess, err := repl.DialTCP(replicateTo, raw, dir)
		if err != nil {
			ln.Close()
			return err
		}
		capture, err = repl.NewCapture(raw, repl.Config{
			Session: sess,
			Root:    dir,
			Raw:     raw,
			Logf: func(format string, args ...any) {
				logger.Warn("replication", "msg", fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			ln.Close()
			return fmt.Errorf("replication handshake with %s: %w", replicateTo, err)
		}
		opt.FS = capture
	}
	v, err := vaultcfg.OpenWith(dir, name, master, opt)
	if err != nil {
		ln.Close()
		return err
	}
	defer v.Close()
	if capture != nil {
		capture.StartAntiEntropy(v, 10*time.Second)
		defer capture.Close()
		logger.Info("replicating", "follower", replicateTo, "epoch", capture.Epoch())
	}
	registerBuildInfo(v.NumShards())
	pm := &postmortems{dir: dir, log: logger}
	wd, stopWd := startWatchdog(pm, logger)
	defer stopWd()
	notifySIGQUIT(pm, logger)

	h := v.Health()
	logger.Info("vault opened",
		"dir", dir,
		"shards", v.NumShards(),
		"records", h.LiveRecords,
		"durable", h.Durable,
		"recovery_ran", h.LastRecovery.Ran,
		"snapshot_loaded", h.LastRecovery.SnapshotLoaded,
		"wal_entries_replayed", h.LastRecovery.WALEntries)
	if v.NumShards() > 1 {
		// Every shard ran its own recovery at open; log each so a shard that
		// replayed an unexpected WAL tail is visible at startup.
		for i, sh := range v.ShardHealths() {
			logger.Info("shard recovered",
				"shard", i,
				"records", sh.LiveRecords,
				"snapshot_loaded", sh.LastRecovery.SnapshotLoaded,
				"wal_entries_replayed", sh.LastRecovery.WALEntries)
		}
	}

	// Slowloris-resistant timeouts: a client that trickles headers or never
	// reads its response cannot pin a connection (and its vault resources)
	// forever. Export streams are the largest responses; WriteTimeout is
	// sized for them.
	srv := &http.Server{
		Handler: httpapi.New(v, httpapi.WithLogger(logger),
			httpapi.WithWatchdog(wd), httpapi.WithPanicHook(pm.write)),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{
			Handler:           debugMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listener up", "addr", debugAddr)
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if tlsCert != "" {
			logger.Info("serving", "dir", dir, "records", v.Len(), "addr", addr, "tls", true)
			errc <- srv.ServeTLS(ln, tlsCert, tlsKey)
			return
		}
		logger.Warn("serving with PLAINTEXT transport — use -tls-cert/-tls-key in production",
			"dir", dir, "records", v.Len(), "addr", addr, "tls", false)
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills hard
		logger.Info("signal received, draining requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutCtx)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if wh := v.Health(); wh.WALWedged {
			logger.Error("WAL wedged at shutdown — vault was read-only", "err", wh.WALWedgeError)
		}
		logger.Info("drained; closing vault")
		return nil // deferred v.Close checkpoints the WAL and snapshots
	}
}

// handlerBox wraps an http.Handler so atomically swapping concrete handler
// types through atomic.Value is legal.
type handlerBox struct{ h http.Handler }

// runFollower is the warm-standby process: a replication listener applies
// the primary's stream into dir, while a minimal HTTP surface reports
// health and accepts the promotion order. POST /promote fences the old
// primary, opens the replica as a full vault (recovery replays the
// replicated WAL tail), and swaps the complete API in on the same listener
// — clients keep the same address across the failover.
func runFollower(dir, key, addr, replAddr, name string, tlsCert, tlsKey string, opt vaultcfg.Options) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if (tlsCert == "") != (tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key must be given together")
	}
	master, err := vaultcfg.ParseMasterKey(key)
	if err != nil {
		return err
	}
	dir = filepath.Clean(dir)
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	fol, err := repl.NewFollower(faultfs.OS{}, dir)
	if err != nil {
		return err
	}
	rln, err := net.Listen("tcp", replAddr)
	if err != nil {
		return fmt.Errorf("replication listener: %w", err)
	}
	registerBuildInfo(opt.Shards)
	pm := &postmortems{dir: dir, log: logger}
	wd, stopWd := startWatchdog(pm, logger)
	defer stopWd()
	notifySIGQUIT(pm, logger)
	go func() {
		if err := repl.Serve(rln, fol, func(format string, args ...any) {
			logger.Warn("replication", "msg", fmt.Sprintf(format, args...))
		}); err != nil {
			logger.Error("replication listener failed", "err", err.Error())
		}
	}()

	var (
		mu       sync.Mutex // serializes promotion
		promoted *core.Cluster
		handler  atomic.Value // handlerBox
	)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"role\":\"follower\",\"epoch\":%d,\"applied_lsn\":%d}\n", fol.Epoch(), fol.AppliedLSN())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.Default.WritePrometheus(w)
	})
	// The follower's flight ring records replicated-apply events carrying the
	// primary's trace IDs; serving it pre-promotion lets an operator join a
	// primary write to its standby apply without shelling into the box.
	mux.Handle("GET /debug/flight", httpapi.FlightHandler(obs.DefaultFlight))
	mux.HandleFunc("POST /promote", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if promoted != nil {
			w.WriteHeader(http.StatusConflict)
			fmt.Fprintln(w, "{\"error\":\"already promoted\"}")
			return
		}
		epoch, err := fol.Promote()
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
			return
		}
		v, err := vaultcfg.OpenWith(dir, name, master, opt)
		if err != nil {
			logger.Error("promoted replica failed to open", "err", err.Error())
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
			return
		}
		// The replication listener stays up so a revived stale primary is
		// fenced — and the attempt lands in the new primary's audit chain.
		fol.SetFenceAuditor(func(detail string) {
			if err := v.AuditReplicationFence(detail); err != nil {
				logger.Error("auditing fence rejection", "err", err.Error())
			}
		})
		handler.Store(handlerBox{httpapi.New(v, httpapi.WithLogger(logger),
			httpapi.WithWatchdog(wd), httpapi.WithPanicHook(pm.write))})
		promoted = v
		h := v.Health()
		logger.Info("promoted", "epoch", epoch, "records", h.LiveRecords,
			"recovery_ran", h.LastRecovery.Ran, "wal_entries_replayed", h.LastRecovery.WALEntries)
		fmt.Fprintf(w, "{\"promoted\":true,\"epoch\":%d}\n", epoch)
	})
	handler.Store(handlerBox{mux})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		rln.Close()
		return err
	}
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(handlerBox).h.ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("follower up", "dir", dir, "addr", addr, "repl_addr", replAddr, "epoch", fol.Epoch())
		if tlsCert != "" {
			errc <- srv.ServeTLS(ln, tlsCert, tlsKey)
			return
		}
		errc <- srv.Serve(ln)
	}()
	select {
	case err := <-errc:
		rln.Close()
		return err
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining requests")
		shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		rln.Close()
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if promoted != nil {
			logger.Info("drained; closing promoted vault")
			return promoted.Close()
		}
		return nil
	}
}

// debugMux carries the operator-only surfaces: pprof and the trace ring.
// Neither belongs on the public listener in production, and pprof in
// particular can stall the process (heap dumps, 30s CPU profiles), so both
// live on their own loopback listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/traces", httpapi.TraceHandler(obs.DefaultTracer))
	mux.Handle("/debug/flight", httpapi.FlightHandler(obs.DefaultFlight))
	return mux
}
