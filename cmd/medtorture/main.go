// Command medtorture runs the crash-recovery torture harness: a scripted
// clinical workload over a fault-injecting in-memory filesystem, with a
// simulated power cut (and fsync failure, ENOSPC, and bit rot) at every
// filesystem operation the workload performs, followed by recovery and a
// full durability audit. See internal/core/torture.go for the invariants.
//
// With -failover the same workload runs on a replicated primary instead:
// the primary is killed at every mutating fs op AND every replication
// stream boundary (before send, after apply, after ack), the warm follower
// is promoted, and the promoted vault must hold every acknowledged write
// with a clean integrity sweep, no plaintext on the medium, and the dead
// primary's epoch fenced out. See internal/repl/torture.go.
//
//	medtorture                     # full matrix: every injection point
//	medtorture -quick              # CI smoke: every fifth point
//	medtorture -shards 4           # torture a 4-shard cluster (per-shard WALs and chains)
//	medtorture -failover           # kill/promote matrix over the replication stream
//	medtorture -failover -shards 4 # failover of a sharded cluster
//	medtorture -v                  # progress per phase and per failure
package main

import (
	"flag"
	"fmt"
	"os"

	"medvault/internal/core"
	"medvault/internal/repl"
)

func main() {
	quick := flag.Bool("quick", false, "subsample the injection-point matrix (CI smoke)")
	stride := flag.Int("stride", 0, "test every Nth injection point (overrides -quick's stride)")
	shards := flag.Int("shards", 0, "cluster shard count (0 or 1 = classic single vault)")
	failover := flag.Bool("failover", false, "torture the replication stream: kill the primary at every boundary and promote the follower")
	verbose := flag.Bool("v", false, "print phase progress")
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	shardNote := ""
	if *shards > 1 {
		shardNote = fmt.Sprintf(" (%d shards)", *shards)
	}

	if *failover {
		rep, err := repl.RunFailoverTorture(repl.FailoverOpts{Quick: *quick, Stride: *stride, Shards: *shards, Logf: logf})
		if err != nil {
			fmt.Fprintf(os.Stderr, "medtorture: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("medtorture: failover matrix: %d fs kill points, %d frame kill points ×3 boundaries, %d scenarios%s\n",
			rep.FSKillPoints, rep.FrameKillPoints, rep.Scenarios, shardNote)
		if rep.Passed() {
			fmt.Println("medtorture: every acknowledged write survived every failover")
			return
		}
		fmt.Printf("medtorture: %d invariant violations:\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Printf("  %s\n", f)
		}
		os.Exit(1)
	}

	opts := core.TortureOpts{Quick: *quick, Stride: *stride, Shards: *shards}
	if *verbose {
		opts.Logf = logf
	}
	rep, err := core.RunTorture(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medtorture: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("medtorture: %d injection points, %d crash scenarios, %d fault scenarios%s\n",
		rep.InjectionPoints, rep.CrashScenarios, rep.FaultScenarios, shardNote)
	if rep.Passed() {
		fmt.Println("medtorture: all durability invariants held")
		return
	}
	fmt.Printf("medtorture: %d invariant violations:\n", len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("  %s\n", f)
	}
	os.Exit(1)
}
