// Command medtorture runs the crash-recovery torture harness: a scripted
// clinical workload over a fault-injecting in-memory filesystem, with a
// simulated power cut (and fsync failure, ENOSPC, and bit rot) at every
// filesystem operation the workload performs, followed by recovery and a
// full durability audit. See internal/core/torture.go for the invariants.
//
//	medtorture            # full matrix: every injection point
//	medtorture -quick     # CI smoke: every fifth point
//	medtorture -shards 4  # torture a 4-shard cluster (per-shard WALs and chains)
//	medtorture -v         # progress per phase and per failure
package main

import (
	"flag"
	"fmt"
	"os"

	"medvault/internal/core"
)

func main() {
	quick := flag.Bool("quick", false, "subsample the injection-point matrix (CI smoke)")
	stride := flag.Int("stride", 0, "test every Nth injection point (overrides -quick's stride)")
	shards := flag.Int("shards", 0, "cluster shard count (0 or 1 = classic single vault)")
	verbose := flag.Bool("v", false, "print phase progress")
	flag.Parse()

	opts := core.TortureOpts{Quick: *quick, Stride: *stride, Shards: *shards}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	rep, err := core.RunTorture(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medtorture: %v\n", err)
		os.Exit(2)
	}
	shardNote := ""
	if *shards > 1 {
		shardNote = fmt.Sprintf(" (%d shards)", *shards)
	}
	fmt.Printf("medtorture: %d injection points, %d crash scenarios, %d fault scenarios%s\n",
		rep.InjectionPoints, rep.CrashScenarios, rep.FaultScenarios, shardNote)
	if rep.Passed() {
		fmt.Println("medtorture: all durability invariants held")
		return
	}
	fmt.Printf("medtorture: %d invariant violations:\n", len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("  %s\n", f)
	}
	os.Exit(1)
}
