package main

// Client-side statistics: the collector is a medclient.Recorder shared by
// every actor; the report is what the CLI prints and LOAD_<n>.json stores.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"medvault/internal/medclient"
)

// maxSamplesPerEndpoint bounds per-endpoint latency memory. Full runs stay
// far under it; beyond the cap new samples overwrite random slots so the
// distribution stays representative.
const maxSamplesPerEndpoint = 100_000

// collector aggregates every call the actor fleet makes. Safe for
// concurrent use.
type collector struct {
	stopping atomic.Bool // set when the window closes: in-flight cancellations are not errors

	mu         sync.Mutex
	byEndpoint map[string]*dist
	total      int64
	unexpected int64
	transport  int64
	replace    uint64 // cheap LCG state for over-cap slot replacement
}

// dist is one endpoint's latency record.
type dist struct {
	samples    []float64 // seconds
	count      int64
	unexpected int64
	max        float64
}

func newCollector() *collector {
	return &collector{byEndpoint: make(map[string]*dist)}
}

// Record implements medclient.Recorder.
func (c *collector) Record(call medclient.Call) {
	c.record(call.Endpoint, call.Status, call.Duration, call.Err, call.Unexpected)
}

func (c *collector) record(endpoint string, status int, d time.Duration, err error, unexpected bool) {
	// Once the window closes, calls the cancellation chopped mid-flight are
	// bookkeeping noise, not failures.
	if c.stopping.Load() && err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if unexpected {
		c.unexpected++
	}
	if status == 0 { // transport-level failure; no server verdict
		c.transport++
		return
	}
	ep := c.byEndpoint[endpoint]
	if ep == nil {
		ep = &dist{}
		c.byEndpoint[endpoint] = ep
	}
	secs := d.Seconds()
	ep.count++
	if unexpected {
		ep.unexpected++
	}
	if secs > ep.max {
		ep.max = secs
	}
	if len(ep.samples) < maxSamplesPerEndpoint {
		ep.samples = append(ep.samples, secs)
		return
	}
	c.replace = c.replace*6364136223846793005 + 1442695040888963407
	ep.samples[c.replace%uint64(len(ep.samples))] = secs
}

// endpointStats is one endpoint's row in the report.
type endpointStats struct {
	Endpoint   string  `json:"endpoint"`
	Count      int64   `json:"count"`
	Unexpected int64   `json:"unexpected"`
	P50S       float64 `json:"p50_s"`
	P95S       float64 `json:"p95_s"`
	P99S       float64 `json:"p99_s"`
	MaxS       float64 `json:"max_s"`
}

// invariantResult is one cross-actor invariant's verdict.
type invariantResult struct {
	Name       string `json:"name"`
	Checked    int    `json:"checked"`
	Violations int    `json:"violations"`
	Detail     string `json:"detail,omitempty"` // first violation, for the report
}

func (i *invariantResult) fail(detail string) {
	i.Violations++
	if i.Detail == "" {
		i.Detail = detail
	}
}

// sloResult is the run's gate verdict.
type sloResult struct {
	P99TargetS  float64  `json:"p99_target_s"`
	ErrorBudget float64  `json:"error_budget"`
	Pass        bool     `json:"pass"`
	Failures    []string `json:"failures,omitempty"`
}

// report is the run's full outcome; loadjson.go serializes it.
type report struct {
	Schema          string            `json:"schema"`
	Generated       time.Time         `json:"generated"`
	Target          string            `json:"target"`
	Shards          int               `json:"shards"`
	Scenarios       []string          `json:"scenarios"`
	Actors          int               `json:"actors"`
	DurationS       float64           `json:"duration_s"`
	CallsTotal      int64             `json:"calls_total"`
	CallsUnexpected int64             `json:"calls_unexpected"`
	TransportErrors int64             `json:"transport_errors"`
	ThroughputRPS   float64           `json:"throughput_rps"`
	Endpoints       []endpointStats   `json:"endpoints"`
	Invariants      []invariantResult `json:"invariants"`
	SLO             sloResult         `json:"slo"`
}

// sloMinCalls is the per-endpoint sample floor for the p99 gate: a handful
// of calls says nothing about a tail.
const sloMinCalls = 10

// buildReport snapshots the collector, evaluates the SLO gates, and
// assembles the report.
func buildReport(cfg config, shards int, elapsed time.Duration, col *collector, invariants []invariantResult) *report {
	col.mu.Lock()
	endpoints := make([]endpointStats, 0, len(col.byEndpoint))
	for name, d := range col.byEndpoint {
		sorted := append([]float64(nil), d.samples...)
		sort.Float64s(sorted)
		endpoints = append(endpoints, endpointStats{
			Endpoint: name, Count: d.count, Unexpected: d.unexpected,
			P50S: quantile(sorted, 0.50), P95S: quantile(sorted, 0.95),
			P99S: quantile(sorted, 0.99), MaxS: d.max,
		})
	}
	total, unexpected, transport := col.total, col.unexpected, col.transport
	col.mu.Unlock()
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i].Endpoint < endpoints[j].Endpoint })

	rep := &report{
		Target:          cfg.Target,
		Shards:          shards,
		Scenarios:       cfg.Scenarios,
		Actors:          cfg.Actors,
		DurationS:       elapsed.Seconds(),
		CallsTotal:      total,
		CallsUnexpected: unexpected,
		TransportErrors: transport,
		Endpoints:       endpoints,
		Invariants:      invariants,
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(total) / elapsed.Seconds()
	}

	slo := sloResult{P99TargetS: cfg.P99Target.Seconds(), ErrorBudget: cfg.ErrorBudget, Pass: true}
	target := cfg.P99Target.Seconds()
	for _, e := range endpoints {
		if e.Count >= sloMinCalls && e.P99S > target {
			slo.Pass = false
			slo.Failures = append(slo.Failures,
				fmt.Sprintf("%s p99 %s > target %s", e.Endpoint, fmtSec(e.P99S), cfg.P99Target))
		}
	}
	if total > 0 {
		rate := float64(unexpected+transport) / float64(total)
		if rate > cfg.ErrorBudget {
			slo.Pass = false
			slo.Failures = append(slo.Failures,
				fmt.Sprintf("error rate %.4f (%d unexpected + %d transport of %d calls) > budget %.4f",
					rate, unexpected, transport, total, cfg.ErrorBudget))
		}
	} else {
		slo.Pass = false
		slo.Failures = append(slo.Failures, "no calls completed")
	}
	for _, inv := range invariants {
		if inv.Violations > 0 {
			slo.Pass = false
			slo.Failures = append(slo.Failures,
				fmt.Sprintf("invariant %s: %d violation(s): %s", inv.Name, inv.Violations, inv.Detail))
		}
	}
	rep.SLO = slo
	return rep
}

// quantile reads q from an ascending-sorted sample set.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
