package main

// Machine-readable load output, mirroring medbench's BENCH_<n>.json
// pattern: the human table is for reading, CI wants something it can
// archive, validate, and diff. writeLoadJSON serializes the run's report to
// the first free LOAD_<n>.json in the chosen directory. The schema is
// versioned ("medvault-load/v1") and documented in EXPERIMENTS.md;
// consumers must ignore unknown fields.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// loadSchema versions the JSON layout. Bump it on any incompatible change.
const loadSchema = "medvault-load/v1"

// writeLoadJSON stamps and writes rep to the first free LOAD_<n>.json under
// dir, printing the chosen path.
func writeLoadJSON(dir string, rep *report) error {
	rep.Schema = loadSchema
	rep.Generated = time.Now().UTC()
	if rep.Endpoints == nil {
		rep.Endpoints = []endpointStats{}
	}
	if rep.Invariants == nil {
		rep.Invariants = []invariantResult{}
	}

	path, f, err := nextLoadFile(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s (schema %s)\n", path, loadSchema)
	return nil
}

// nextLoadFile creates the first LOAD_<n>.json that does not already exist,
// so successive runs in one directory never clobber each other. O_EXCL
// makes the claim atomic even across concurrent runs.
func nextLoadFile(dir string) (string, *os.File, error) {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("LOAD_%d.json", n))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			return path, f, nil
		}
		if !os.IsExist(err) {
			return "", nil, fmt.Errorf("create %s: %w", path, err)
		}
	}
}
