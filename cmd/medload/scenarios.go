package main

// The load engine: scenario definitions, the shared world the actors read
// and write, the run loop, and the post-run cross-actor invariant checks.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"medvault/internal/medclient"
)

// weighted is one persona's share of a scenario's actor pool.
type weighted struct {
	persona string
	weight  int
}

// scenarios maps each named scenario to its persona mix. A run's actors are
// split evenly across the selected scenarios, then within each by weight.
var scenarios = map[string][]weighted{
	// A ward admitting patients: write-heavy, with portal reads riding along.
	"admission": {{"admit-clin", 3}, {"patient", 1}},
	// An insurance audit: compliance-surface reads hammering the audit
	// chain, custody, and disclosures while billing traffic continues.
	"audit-storm": {{"ins-auditor", 2}, {"records-clerk", 2}},
	// Evidence export: full-history pulls with versions and proofs.
	"export-burst": {{"export-clin", 2}, {"investigator", 1}},
	// A mass-casualty event: break-glass grants spike, and the auditors
	// watch the emergency reads land in the trail as they happen.
	"breakglass-spike": {{"bg-responder", 2}, {"ins-auditor", 1}},
	// Business as usual: a bit of everything.
	"steady": {{"admit-clin", 2}, {"records-clerk", 1}, {"ins-auditor", 1}, {"patient", 1}, {"investigator", 1}},
}

func scenarioNames() []string {
	names := make([]string, 0, len(scenarios))
	for k := range scenarios {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// config is one load run's parameters.
type config struct {
	Target      string
	Actors      int
	Duration    time.Duration
	Scenarios   []string
	P99Target   time.Duration
	ErrorBudget float64

	// Tunables with serviceable defaults (zero selects them).
	MRNs             int           // patient pool size
	WaitReady        time.Duration // how long to wait for a 200 from /healthz
	InvariantSamples int           // per-invariant sample bound
}

func (c *config) defaults() {
	if c.MRNs == 0 {
		c.MRNs = 24
	}
	if c.WaitReady == 0 {
		c.WaitReady = 30 * time.Second
	}
	if c.InvariantSamples == 0 {
		c.InvariantSamples = 25
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = scenarioNames()
	}
}

// world is the state the actors share: the record pools they draw read
// targets from, and the samples the invariant phase replays against the
// compliance surfaces. All appends are bounded.
type world struct {
	mrns []string
	seq  atomic.Uint64

	mu       sync.Mutex
	clinical []recRef // id + mrn, readable by clinicians/nurses
	billing  []string
	created  []string // sampled create IDs (created-readable check)
	bgReads  []bgRead // sampled break-glass reads (audit + disclosure checks)
	denials  []denial // sampled expected-403 probes (denied-audited check)
}

type recRef struct{ id, mrn string }
type bgRead struct{ actor, record, mrn string }
type denial struct{ actor, record string }

const sampleCap = 256 // per-sample-list bound; invariants check a subset anyway

func newWorld(mrns int) *world {
	w := &world{mrns: make([]string, mrns)}
	for i := range w.mrns {
		w.mrns[i] = fmt.Sprintf("mrn-load-%03d", i)
	}
	return w
}

func (w *world) randMRN(rnd *rand.Rand) string { return w.mrns[rnd.Intn(len(w.mrns))] }

func (w *world) nextRecordID(mrn string) string {
	return fmt.Sprintf("load/%s/r%06d", mrn, w.seq.Add(1))
}

func (w *world) addClinical(id, mrn string) {
	w.mu.Lock()
	w.clinical = append(w.clinical, recRef{id, mrn})
	w.mu.Unlock()
}

func (w *world) addBilling(id string) {
	w.mu.Lock()
	w.billing = append(w.billing, id)
	w.mu.Unlock()
}

func (w *world) randClinical(rnd *rand.Rand) (id, mrn string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.clinical) == 0 {
		return "", ""
	}
	r := w.clinical[rnd.Intn(len(w.clinical))]
	return r.id, r.mrn
}

func (w *world) randBilling(rnd *rand.Rand) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.billing) == 0 {
		return ""
	}
	return w.billing[rnd.Intn(len(w.billing))]
}

func (w *world) noteCreated(id string) {
	w.mu.Lock()
	if len(w.created) < sampleCap {
		w.created = append(w.created, id)
	}
	w.mu.Unlock()
}

func (w *world) noteBGRead(actor, record, mrn string) {
	w.mu.Lock()
	if len(w.bgReads) < sampleCap {
		w.bgReads = append(w.bgReads, bgRead{actor, record, mrn})
	}
	w.mu.Unlock()
}

func (w *world) noteDenial(actor, record string) {
	w.mu.Lock()
	if len(w.denials) < sampleCap {
		w.denials = append(w.denials, denial{actor, record})
	}
	w.mu.Unlock()
}

// assignActors deals n actors across the selected scenarios round-robin,
// and within each scenario across its personas by weight. The i-th actor of
// a persona is the principal "<persona>-<i>".
func assignActors(n int, names []string) []struct{ scenario, persona string } {
	// Expand each scenario's mix into a repeating slot sequence.
	slots := make(map[string][]string, len(names))
	for _, s := range names {
		var seq []string
		for _, wp := range scenarios[s] {
			for i := 0; i < wp.weight; i++ {
				seq = append(seq, wp.persona)
			}
		}
		slots[s] = seq
	}
	out := make([]struct{ scenario, persona string }, n)
	taken := make(map[string]int, len(names)) // per-scenario slot cursor
	for i := 0; i < n; i++ {
		s := names[i%len(names)]
		seq := slots[s]
		out[i] = struct{ scenario, persona string }{s, seq[taken[s]%len(seq)]}
		taken[s]++
	}
	return out
}

// runLoad drives one full run: readiness, seed, load window, invariants,
// report. It is the testable engine behind the CLI.
func runLoad(ctx context.Context, cfg config) (*report, error) {
	cfg.defaults()

	// The probe client: readiness, seeding, invariants. Unrecorded, so the
	// latency report covers only the load window's traffic.
	probe := medclient.New(cfg.Target)
	shards, err := waitReady(ctx, probe, cfg.WaitReady)
	if err != nil {
		return nil, err
	}

	w := newWorld(cfg.MRNs)
	if err := seed(ctx, probe, w); err != nil {
		return nil, fmt.Errorf("seed phase: %w", err)
	}

	// The load window. Every actor derives from one recorded base client so
	// the whole fleet multiplexes over a single connection pool.
	col := newCollector()
	base := medclient.New(cfg.Target, medclient.WithRecorder(col))
	assignments := assignActors(cfg.Actors, cfg.Scenarios)

	loadCtx, cancel := context.WithCancel(ctx)
	timer := time.AfterFunc(cfg.Duration, func() {
		col.stopping.Store(true)
		cancel()
	})
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	perPersona := make(map[string]int, len(personas))
	for i, as := range assignments {
		p := personas[as.persona]
		idx := perPersona[as.persona]
		perPersona[as.persona]++
		principal := fmt.Sprintf("%s-%d", p.name, idx)
		a := &actor{
			c:   base.As(principal),
			w:   w,
			rnd: rand.New(rand.NewSource(int64(i)*7919 + 17)),
			id:  principal,
		}
		wg.Add(1)
		go func(script func(context.Context, *actor)) {
			defer wg.Done()
			for loadCtx.Err() == nil {
				script(loadCtx, a)
				// A short jitter interleaves personas without throttling the
				// flood; beats are multi-call, so load stays high.
				select {
				case <-loadCtx.Done():
					return
				case <-time.After(time.Duration(a.rnd.Intn(4)+1) * time.Millisecond):
				}
			}
		}(p.script)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Post-run: the compliance mechanisms must account for what the fleet
	// just did.
	invCtx, invCancel := context.WithTimeout(ctx, 60*time.Second)
	defer invCancel()
	invariants := checkInvariants(invCtx, probe, w, cfg.InvariantSamples)

	rep := buildReport(cfg, shards, elapsed, col, invariants)
	return rep, nil
}

// waitReady polls /healthz until the vault answers 200, returning the
// cluster's shard count.
func waitReady(ctx context.Context, probe *medclient.Client, patience time.Duration) (int, error) {
	deadline := time.Now().Add(patience)
	for {
		h, status, err := probe.Healthz(ctx, http.StatusOK, http.StatusServiceUnavailable)
		if err == nil && status == http.StatusOK {
			return h.NumShards(), nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("target %s not ready after %s (last status %d, err %v)", probe.BaseURL(), patience, status, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// seed gives every MRN a small chart — two clinical notes and one billing
// record — so read-heavy personas have targets from the first beat.
func seed(ctx context.Context, probe *medclient.Client, w *world) error {
	phys := probe.As(seedPhysician)
	clerk := probe.As(seedClerk)
	rnd := rand.New(rand.NewSource(1))
	for _, mrn := range w.mrns {
		for i := 0; i < 2; i++ {
			id := w.nextRecordID(mrn)
			if _, _, err := phys.CreateRecord(ctx, loadRecord(id, mrn, "clinical", clinicalBody(rnd))); err != nil {
				return err
			}
			w.addClinical(id, mrn)
		}
		id := w.nextRecordID(mrn)
		if _, _, err := clerk.CreateRecord(ctx, loadRecord(id, mrn, "billing", billingBody(rnd))); err != nil {
			return err
		}
		w.addBilling(id)
	}
	return nil
}

// checkInvariants replays the run's samples against the compliance
// surfaces through the checker officer's eyes.
func checkInvariants(ctx context.Context, probe *medclient.Client, w *world, samples int) []invariantResult {
	officer := probe.As(checkOfficer)
	phys := probe.As(seedPhysician)

	w.mu.Lock()
	bgReads := append([]bgRead(nil), w.bgReads...)
	denials := append([]denial(nil), w.denials...)
	created := append([]string(nil), w.created...)
	w.mu.Unlock()

	var out []invariantResult

	// Every sampled break-glass read is in the audit trail, marked as a
	// break-glass decision.
	inv := invariantResult{Name: "breakglass-audited"}
	for _, r := range capSample(bgReads, samples) {
		inv.Checked++
		events, _, err := officer.Audit(ctx, medclient.AuditQuery{Actor: r.actor, Record: r.record})
		if err != nil {
			inv.fail(fmt.Sprintf("audit query for %s/%s: %v", r.actor, r.record, err))
			continue
		}
		var found bool
		for _, e := range events {
			if e.Action == "read" && e.Outcome == "allowed" && strings.Contains(e.Detail, "break-glass") {
				found = true
				break
			}
		}
		if !found {
			inv.fail(fmt.Sprintf("break-glass read %s by %s missing from audit", r.record, r.actor))
		}
	}
	out = append(out, inv)

	// ...and in the patient's accounting of disclosures, flagged.
	inv = invariantResult{Name: "breakglass-disclosed"}
	for _, r := range capSample(bgReads, samples) {
		inv.Checked++
		ds, _, err := officer.Disclosures(ctx, r.mrn)
		if err != nil {
			inv.fail(fmt.Sprintf("disclosures for %s: %v", r.mrn, err))
			continue
		}
		var found bool
		for _, d := range ds {
			if d.Actor == r.actor && d.Record == r.record && d.Action == "read" && d.BreakGlass {
				found = true
				break
			}
		}
		if !found {
			inv.fail(fmt.Sprintf("break-glass read %s by %s missing from %s disclosures", r.record, r.actor, r.mrn))
		}
	}
	out = append(out, inv)

	// Every sampled denial probe left an audited denial.
	inv = invariantResult{Name: "denied-audited"}
	for _, d := range capSample(denials, samples) {
		inv.Checked++
		events, _, err := officer.Audit(ctx, medclient.AuditQuery{Actor: d.actor, DeniedOnly: true})
		if err != nil {
			inv.fail(fmt.Sprintf("audit query for %s: %v", d.actor, err))
			continue
		}
		var found bool
		for _, e := range events {
			if e.Record == d.record {
				found = true
				break
			}
		}
		if !found {
			inv.fail(fmt.Sprintf("denied read of %s by %s missing from audit", d.record, d.actor))
		}
	}
	out = append(out, inv)

	// Everything the fleet created is still readable.
	inv = invariantResult{Name: "created-readable"}
	for _, id := range capSample(created, samples) {
		inv.Checked++
		rec, _, err := phys.GetRecord(ctx, id)
		if err != nil {
			inv.fail(fmt.Sprintf("created record %s unreadable: %v", id, err))
		} else if rec.Version < 1 {
			inv.fail(fmt.Sprintf("created record %s has version %d", id, rec.Version))
		}
	}
	out = append(out, inv)

	// The vault still proves its own integrity after the stampede.
	inv = invariantResult{Name: "verify-clean", Checked: 1}
	if rep, _, err := officer.Verify(ctx); err != nil {
		inv.fail(fmt.Sprintf("verify: %v", err))
	} else if rep.Status != "ok" {
		inv.fail(fmt.Sprintf("verify status %q: %s", rep.Status, rep.Error))
	}
	out = append(out, inv)

	return out
}

func capSample[T any](s []T, n int) []T {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
