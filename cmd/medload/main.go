// Command medload is a multi-actor HTTP workload simulator for medvaultd.
//
// It spawns concurrent scenario actors — admitting clinicians, records
// clerks, insurance auditors, breach investigators, break-glass responders,
// patient-portal probes — each driving the REST surface through the typed
// internal/medclient with the statuses its persona is entitled to baked into
// every call: a clerk reading a clinical record EXPECTS a 403, and anything
// else (a 200 most of all) counts against the run. After the load window it
// verifies cross-actor invariants through a compliance officer's eyes: every
// break-glass read must appear in the audit log and in the patient's
// accounting of disclosures, every sampled denial must be audited, and the
// vault must still pass a full integrity sweep.
//
// Usage:
//
//	medload -target http://127.0.0.1:8600 [-actors 200] [-duration 30s]
//	        [-scenarios admission,audit-storm,...] [-quick]
//	        [-slo-p99 2s] [-error-budget 0] [-json-dir .] [-no-json]
//
//	medload -print-principals [-actors N]   # emit principals.conf lines
//
// The run reports per-endpoint client-side latency percentiles, throughput,
// and an SLO verdict, and writes a versioned LOAD_<n>.json artifact (schema
// "medvault-load/v1", documented in EXPERIMENTS.md). Exit status is 0 only
// when every SLO gate and every invariant holds.
//
// The target vault must know the load principals; provision them by
// appending `medload -print-principals -actors N` to the vault directory's
// principals.conf before starting medvaultd.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of the vault under load (required)")
		actors      = flag.Int("actors", 200, "concurrent scenario actors")
		duration    = flag.Duration("duration", 30*time.Second, "load window")
		scenarioCSV = flag.String("scenarios", "all", "comma-separated scenarios: "+strings.Join(scenarioNames(), ",")+" (or all)")
		quick       = flag.Bool("quick", false, "smoke mode: 16 actors, 3s window")
		p99         = flag.Duration("slo-p99", 2*time.Second, "per-endpoint p99 latency gate")
		budget      = flag.Float64("error-budget", 0, "allowed fraction of unexpected-status calls (0 = none)")
		jsonDir     = flag.String("json-dir", ".", "directory for the LOAD_<n>.json artifact")
		noJSON      = flag.Bool("no-json", false, "skip the JSON artifact")
		printPrinc  = flag.Bool("print-principals", false, "print principals.conf lines for -actors actors and exit")
	)
	flag.Parse()

	if *quick {
		*actors = 16
		*duration = 3 * time.Second
	}
	if *printPrinc {
		fmt.Print(principalLines(*actors))
		return
	}
	if *target == "" {
		fmt.Fprintln(os.Stderr, "medload: -target is required")
		os.Exit(2)
	}
	names, err := parseScenarios(*scenarioCSV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "medload:", err)
		os.Exit(2)
	}

	cfg := config{
		Target:      *target,
		Actors:      *actors,
		Duration:    *duration,
		Scenarios:   names,
		P99Target:   *p99,
		ErrorBudget: *budget,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := runLoad(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "medload:", err)
		os.Exit(1)
	}
	printReport(os.Stdout, rep)
	if !*noJSON {
		if err := writeLoadJSON(*jsonDir, rep); err != nil {
			fmt.Fprintln(os.Stderr, "medload:", err)
			os.Exit(1)
		}
	}
	if !rep.SLO.Pass {
		os.Exit(1)
	}
}

// parseScenarios validates the -scenarios list ("all" selects every one).
func parseScenarios(csv string) ([]string, error) {
	if csv == "" || csv == "all" {
		return scenarioNames(), nil
	}
	var out []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := scenarios[name]; !ok {
			return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(scenarioNames(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	sort.Strings(out)
	return out, nil
}

// printReport renders the human-readable summary: throughput, per-endpoint
// latency, invariant verdicts, and the SLO gate results.
func printReport(w *os.File, rep *report) {
	fmt.Fprintf(w, "\nmedload: %s  shards=%d  scenarios=%s\n",
		rep.Target, rep.Shards, strings.Join(rep.Scenarios, ","))
	fmt.Fprintf(w, "%d actors, %.1fs window: %d calls (%.0f/s), %d unexpected status, %d transport errors\n",
		rep.Actors, rep.DurationS, rep.CallsTotal, rep.ThroughputRPS, rep.CallsUnexpected, rep.TransportErrors)

	fmt.Fprintf(w, "\n%-40s %8s %6s %9s %9s %9s\n", "endpoint", "calls", "unexp", "p50", "p99", "max")
	for _, e := range rep.Endpoints {
		fmt.Fprintf(w, "%-40s %8d %6d %9s %9s %9s\n", e.Endpoint, e.Count, e.Unexpected,
			fmtSec(e.P50S), fmtSec(e.P99S), fmtSec(e.MaxS))
	}

	fmt.Fprintln(w)
	for _, inv := range rep.Invariants {
		verdict := "ok"
		if inv.Violations > 0 {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "invariant %-24s checked=%-4d violations=%-3d %s", inv.Name, inv.Checked, inv.Violations, verdict)
		if inv.Detail != "" {
			fmt.Fprintf(w, "  (%s)", inv.Detail)
		}
		fmt.Fprintln(w)
	}

	if rep.SLO.Pass {
		fmt.Fprintf(w, "\nSLO: PASS (p99 <= %s per endpoint, error budget %.4f)\n",
			time.Duration(rep.SLO.P99TargetS*float64(time.Second)), rep.SLO.ErrorBudget)
		return
	}
	fmt.Fprintln(w, "\nSLO: FAIL")
	for _, f := range rep.SLO.Failures {
		fmt.Fprintln(w, "  -", f)
	}
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
