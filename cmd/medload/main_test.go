package main

// In-process end-to-end tests: runLoad drives a live httpapi handler over a
// real vault (one shard) and a real cluster (four shards), and the run must
// pass its own SLO gates with zero invariant violations — the same bar the
// CI smoke step holds the built binaries to.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"medvault/internal/authz"
	"medvault/internal/core"
	"medvault/internal/httpapi"
	"medvault/internal/medclient"
	"medvault/internal/vcrypto"
)

// newLoadTarget serves a fresh in-memory vault or cluster with every medload
// principal provisioned, exactly as principals.conf lines would.
func newLoadTarget(t *testing.T, shards, actors int) string {
	t.Helper()
	master, err := vcrypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Name: "load-test", Master: master}
	var v core.API
	if shards == 1 {
		v, err = core.Open(cfg)
	} else {
		v, err = core.OpenCluster(cfg, shards)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })

	a := v.Authz()
	for _, r := range authz.StandardRoles() {
		a.DefineRole(r)
	}
	for _, line := range strings.Split(principalLines(actors), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed principal line %q", line)
		}
		if err := a.AddPrincipal(fields[0], strings.Split(fields[1], ",")...); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(httpapi.New(v))
	t.Cleanup(ts.Close)
	return ts.URL
}

func quickConfig(target string) config {
	return config{
		Target:           target,
		Actors:           8,
		Duration:         1500 * time.Millisecond,
		P99Target:        5 * time.Second, // generous: shared CI runners
		MRNs:             8,
		InvariantSamples: 10,
	}
}

func testQuickLoad(t *testing.T, shards int) {
	target := newLoadTarget(t, shards, 8)
	rep, err := runLoad(context.Background(), quickConfig(target))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != shards {
		t.Errorf("report shards = %d, want %d", rep.Shards, shards)
	}
	if !rep.SLO.Pass {
		t.Errorf("SLO failed: %v", rep.SLO.Failures)
	}
	if rep.CallsTotal == 0 || rep.ThroughputRPS == 0 {
		t.Errorf("no load generated: %+v", rep)
	}
	byName := map[string]endpointStats{}
	for _, e := range rep.Endpoints {
		byName[e.Endpoint] = e
	}
	for _, want := range []string{"POST /records", "GET /records/{id}", "GET /audit", "POST /breakglass"} {
		e, ok := byName[want]
		if !ok || e.Count == 0 {
			t.Errorf("endpoint %s missing from report", want)
			continue
		}
		if e.P50S < 0 || e.P99S < e.P50S {
			t.Errorf("endpoint %s has nonsense percentiles: %+v", want, e)
		}
	}
	var bgChecked bool
	for _, inv := range rep.Invariants {
		if inv.Violations != 0 {
			t.Errorf("invariant %s violated %d times: %s", inv.Name, inv.Violations, inv.Detail)
		}
		if inv.Name == "breakglass-audited" && inv.Checked > 0 {
			bgChecked = true
		}
	}
	if !bgChecked {
		t.Error("no break-glass reads were sampled; the spike scenario did not run")
	}

	// The artifact round-trips with the documented schema.
	dir := t.TempDir()
	if err := writeLoadJSON(dir, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "LOAD_0.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["schema"] != loadSchema {
		t.Errorf("schema = %v", decoded["schema"])
	}
	for _, key := range []string{"generated", "shards", "actors", "duration_s", "calls_total", "throughput_rps", "endpoints", "invariants", "slo"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("LOAD json missing %q", key)
		}
	}
	// A second write claims the next slot instead of clobbering.
	if err := writeLoadJSON(dir, rep); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "LOAD_1.json")); err != nil {
		t.Error("second run did not claim LOAD_1.json")
	}
}

func TestQuickLoadSingleShard(t *testing.T) { testQuickLoad(t, 1) }

func TestQuickLoadFourShards(t *testing.T) { testQuickLoad(t, 4) }

func TestPrintPrincipals(t *testing.T) {
	lines := strings.Split(strings.TrimSpace(principalLines(3)), "\n")
	seen := map[string]string{}
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed line %q", line)
		}
		seen[fields[0]] = fields[1]
	}
	for id, role := range map[string]string{
		seedPhysician:    "physician",
		seedClerk:        "billing-clerk",
		checkOfficer:     "compliance-officer",
		"admit-clin-0":   "physician",
		"admit-clin-2":   "physician",
		"investigator-1": "compliance-officer,archivist",
		"bg-responder-2": "billing-clerk",
		"patient-0":      "nurse",
	} {
		if seen[id] != role {
			t.Errorf("principal %s = %q, want %q", id, seen[id], role)
		}
	}
	// Every emitted role must resolve against the standard role set.
	known := map[string]bool{}
	for _, r := range authz.StandardRoles() {
		known[r.Name] = true
	}
	for id, roles := range seen {
		for _, r := range strings.Split(roles, ",") {
			if !known[r] {
				t.Errorf("principal %s names unknown role %q", id, r)
			}
		}
	}
}

func TestParseScenarios(t *testing.T) {
	all, err := parseScenarios("all")
	if err != nil || len(all) != len(scenarios) {
		t.Fatalf("all = %v, %v", all, err)
	}
	got, err := parseScenarios("steady, admission")
	if err != nil || len(got) != 2 || got[0] != "admission" || got[1] != "steady" {
		t.Fatalf("subset = %v, %v", got, err)
	}
	if _, err := parseScenarios("nosuch"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestAssignActorsSpreadsPersonas(t *testing.T) {
	names := scenarioNames()
	got := assignActors(20, names)
	if len(got) != 20 {
		t.Fatalf("assigned %d", len(got))
	}
	perScenario := map[string]int{}
	for _, a := range got {
		perScenario[a.scenario]++
		var found bool
		for _, wp := range scenarios[a.scenario] {
			if wp.persona == a.persona {
				found = true
			}
		}
		if !found {
			t.Errorf("actor assigned persona %q outside scenario %q", a.persona, a.scenario)
		}
	}
	for _, s := range names {
		if perScenario[s] == 0 {
			t.Errorf("scenario %s got no actors", s)
		}
	}
}

// TestCollectorIgnoresShutdownNoise pins the stopping-window filter: a call
// chopped by the deadline is not an error, but a transport failure during
// the window is.
func TestCollectorIgnoresShutdownNoise(t *testing.T) {
	col := newCollector()
	col.Record(medclient.Call{Endpoint: "GET /records/{id}", Status: 200, Duration: time.Millisecond})
	col.Record(medclient.Call{Endpoint: "GET /records/{id}", Status: 404, Duration: time.Millisecond,
		Err: &medclient.StatusError{Status: 404}, Unexpected: true})
	col.Record(medclient.Call{Endpoint: "GET /records/{id}", Duration: time.Millisecond, Err: context.Canceled})
	col.stopping.Store(true)
	col.Record(medclient.Call{Endpoint: "GET /records/{id}", Duration: time.Millisecond, Err: context.Canceled})

	rep := buildReport(config{Target: "x", P99Target: time.Second, Scenarios: []string{"steady"}},
		1, time.Second, col, nil)
	if rep.CallsTotal != 3 {
		t.Errorf("calls = %d, want 3 (post-stop cancellation dropped)", rep.CallsTotal)
	}
	if rep.CallsUnexpected != 1 || rep.TransportErrors != 1 {
		t.Errorf("unexpected/transport = %d/%d, want 1/1", rep.CallsUnexpected, rep.TransportErrors)
	}
	if rep.SLO.Pass {
		t.Error("SLO passed despite blown zero error budget")
	}
}
