package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"medvault/internal/faultfs"
	"medvault/internal/obs"
)

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errFn := fn()
	w.Close()
	os.Stdout = old
	out, _ := io.ReadAll(r)
	if errFn != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", errFn, out)
	}
	return string(out)
}

// TestFlightSubcommandDecodesOffline is the offline black-box contract: after
// a vault has done work and closed, 'medvault flight -dir DIR' (no key)
// decodes the persisted segments and any postmortem bundles, and the output
// carries hashed record IDs only — never the raw ID or record body.
func TestFlightSubcommandDecodesOffline(t *testing.T) {
	dir, key := setupVault(t)
	base := []string{"-dir", dir, "-key", key}
	put := append([]string{"put"}, base...)
	put = append(put, "-actor", "dr-a", "-id", "flight/rec-1", "-mrn", "p9",
		"-patient", "Grace H.", "-category", "clinical",
		"-title", "Flight note", "-body", "black box body text")
	if err := run(t, put...); err != nil {
		t.Fatalf("put: %v", err)
	}

	if _, err := obs.WritePostmortem(faultfs.OS{}, dir, "test reason", obs.PostmortemConfig{}); err != nil {
		t.Fatalf("writing bundle: %v", err)
	}

	out := captureStdout(t, func() error {
		return dispatch("flight", []string{"-dir", dir, "-op", "put"})
	})
	if !strings.Contains(out, "flight events:") {
		t.Fatalf("missing event header:\n%s", out)
	}
	if !strings.Contains(out, "record="+obs.HashRecordID("flight/rec-1")) {
		t.Fatalf("missing hashed record ID for the put:\n%s", out)
	}
	for _, leak := range []string{"flight/rec-1", "black box body text", "Grace H."} {
		if strings.Contains(out, leak) {
			t.Fatalf("output leaks %q:\n%s", leak, out)
		}
	}
	if !strings.Contains(out, "postmortem bundles: 1") || !strings.Contains(out, "test reason") {
		t.Fatalf("missing bundle summary:\n%s", out)
	}
}
