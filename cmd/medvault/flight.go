package main

// medvault flight: the offline black-box reader. It decodes the persisted
// flight-recorder segments and postmortem bundles straight from a data
// directory — crashed, wedged, or live — without opening the vault and
// without the master key: the flight plane is PHI-free by construction
// (hashed record IDs, trace IDs, mechanism names), so reading it must not
// require the ability to decrypt records.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"medvault/internal/faultfs"
	"medvault/internal/obs"
)

func cmdFlight(args []string) error {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	dir := fs.String("dir", "", "vault data directory (required; no key needed)")
	op := fs.String("op", "", "only events whose kind contains this substring (case-fold)")
	traceID := fs.String("trace", "", "only events carrying exactly this trace ID")
	record := fs.String("record", "", "only events for this hashed record ID")
	limit := fs.Int("limit", 0, "print at most the last N events (0 = all)")
	bundles := fs.Bool("bundles", false, "also dump each postmortem bundle's flight tail and anomalies")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	raw := faultfs.OS{}

	// Segments live under DIR/flight for a single vault and under each
	// shard's own directory in a sharded layout; a torn tail (the crash
	// frontier) decodes to however many whole frames survived.
	dirs := []string{filepath.Join(*dir, "flight")}
	if ents, err := raw.ReadDir(*dir); err == nil {
		for _, e := range ents {
			if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
				dirs = append(dirs, filepath.Join(*dir, e.Name(), "flight"))
			}
		}
	}
	var evs []obs.FlightEvent
	for _, d := range dirs {
		got, err := obs.ReadFlightDir(raw, d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medvault: reading %s: %v\n", d, err)
			continue
		}
		evs = append(evs, got...)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })

	var out []obs.FlightEvent
	for _, ev := range evs {
		if *op != "" && !strings.Contains(strings.ToLower(ev.Kind), strings.ToLower(*op)) {
			continue
		}
		if *traceID != "" && ev.Trace != *traceID {
			continue
		}
		if *record != "" && ev.Record != *record {
			continue
		}
		out = append(out, ev)
	}
	if *limit > 0 && len(out) > *limit {
		out = out[len(out)-*limit:]
	}
	fmt.Printf("flight events: %d decoded, %d after filters\n", len(evs), len(out))
	for _, ev := range out {
		printFlightEvent(ev)
	}

	pms, _ := obs.ReadPostmortems(raw, *dir)
	if len(pms) == 0 {
		fmt.Println("postmortem bundles: none")
		return nil
	}
	fmt.Printf("postmortem bundles: %d\n", len(pms))
	for _, pm := range pms {
		fmt.Printf("  %s  %-30q  flight=%d slow_ops=%d anomalies=%d stacks=%dB\n",
			pm.Time.Format(time.RFC3339), pm.Reason,
			len(pm.Flight), len(pm.SlowOps), len(pm.Anomalies), len(pm.Stacks))
		if !*bundles {
			continue
		}
		for _, a := range pm.Anomalies {
			fmt.Printf("    anomaly %s since %s: %s\n", a.Kind, a.Since.Format(time.RFC3339), a.Detail)
		}
		for _, ev := range pm.Flight {
			fmt.Print("  ")
			printFlightEvent(ev)
		}
	}
	return nil
}

func printFlightEvent(ev obs.FlightEvent) {
	line := fmt.Sprintf("  %s  %-12s", ev.Time.Format("2006-01-02T15:04:05.000Z07:00"), ev.Kind)
	if ev.Record != "" {
		line += " record=" + ev.Record
	}
	if ev.Trace != "" {
		line += " trace=" + ev.Trace
	}
	if ev.Outcome != "" {
		line += " outcome=" + ev.Outcome
	}
	if ev.Dur > 0 {
		line += fmt.Sprintf(" dur=%s", ev.Dur.Round(time.Microsecond))
	}
	if ev.Shard != "" {
		line += " shard=" + ev.Shard
	}
	if ev.Detail != "" {
		line += fmt.Sprintf(" detail=%q", ev.Detail)
	}
	fmt.Println(line)
}
