package main

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"medvault/internal/vaultcfg"
	"medvault/internal/vcrypto"
)

// run dispatches a CLI invocation in-process. Because the binary's
// subcommands open and close the vault per invocation, these tests exercise
// durable reopen on every step, exactly like real CLI usage.
func run(t *testing.T, args ...string) error {
	t.Helper()
	return dispatch(args[0], args[1:])
}

func setupVault(t *testing.T) (dir, key string) {
	t.Helper()
	dir = t.TempDir()
	master, hexKey, err := vaultcfg.GenerateMasterKey()
	if err != nil {
		t.Fatal(err)
	}
	v, err := vaultcfg.Open(dir, "medvault", master)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	for p, r := range map[string]string{
		"dr-a": "physician", "kim": "compliance-officer", "lee": "archivist",
	} {
		if err := vaultcfg.Grant(dir, p, []string{r}); err != nil {
			t.Fatal(err)
		}
	}
	return dir, hexKey
}

func TestCLIWorkflow(t *testing.T) {
	dir, key := setupVault(t)
	base := []string{"-dir", dir, "-key", key}

	put := append([]string{"put"}, base...)
	put = append(put, "-actor", "dr-a", "-id", "p1/enc-0", "-mrn", "p1",
		"-patient", "Ada L.", "-category", "clinical",
		"-title", "Visit", "-body", "suspected hypertension", "-codes", "I10")
	if err := run(t, put...); err != nil {
		t.Fatalf("put: %v", err)
	}

	if err := run(t, append([]string{"get"}, append(base, "-actor", "dr-a", "-id", "p1/enc-0")...)...); err != nil {
		t.Fatalf("get: %v", err)
	}
	corr := append([]string{"correct"}, append(base, "-actor", "dr-a", "-id", "p1/enc-0", "-body", "confirmed stage 1")...)
	if err := run(t, corr...); err != nil {
		t.Fatalf("correct: %v", err)
	}
	if err := run(t, append([]string{"history"}, append(base, "-actor", "dr-a", "-id", "p1/enc-0")...)...); err != nil {
		t.Fatalf("history: %v", err)
	}
	if err := run(t, append([]string{"search"}, append(base, "-actor", "dr-a", "-q", "hypertension")...)...); err != nil {
		t.Fatalf("search: %v", err)
	}
	if err := run(t, append([]string{"verify"}, base...)...); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := run(t, append([]string{"audit"}, append(base, "-actor", "kim")...)...); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if err := run(t, append([]string{"custody"}, append(base, "-actor", "kim", "-id", "p1/enc-0")...)...); err != nil {
		t.Fatalf("custody: %v", err)
	}
	if err := run(t, append([]string{"disclosures"}, append(base, "-actor", "kim", "-mrn", "p1")...)...); err != nil {
		t.Fatalf("disclosures: %v", err)
	}
	if err := run(t, append([]string{"prove"}, append(base, "-actor", "dr-a", "-id", "p1/enc-0", "-version", "2")...)...); err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := run(t, append([]string{"expired"}, base...)...); err != nil {
		t.Fatalf("expired: %v", err)
	}
	// Durable legal holds: place in one invocation, observe in the next.
	if err := run(t, append([]string{"hold"}, append(base, "-actor", "lee", "-id", "p1/enc-0", "-reason", "case 26-1")...)...); err != nil {
		t.Fatalf("hold: %v", err)
	}
	if err := run(t, append([]string{"holds"}, base...)...); err != nil {
		t.Fatalf("holds: %v", err)
	}
	if err := run(t, append([]string{"release"}, append(base, "-actor", "lee", "-id", "p1/enc-0")...)...); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := run(t, append([]string{"sanitize"}, append(base, "-actor", "lee")...)...); err != nil {
		t.Fatalf("sanitize: %v", err)
	}
}

func TestCLIBackupRestore(t *testing.T) {
	dir, key := setupVault(t)
	base := []string{"-dir", dir, "-key", key}
	put := append([]string{"put"}, base...)
	put = append(put, "-actor", "dr-a", "-id", "p1/enc-0", "-mrn", "p1",
		"-patient", "Ada L.", "-category", "clinical", "-title", "t", "-body", "b")
	if err := run(t, put...); err != nil {
		t.Fatal(err)
	}
	bk, err := vcrypto.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	bkHex := hex.EncodeToString(bk[:])
	out := filepath.Join(t.TempDir(), "v.bak")
	if err := run(t, append([]string{"backup"}, append(base, "-actor", "lee", "-backup-key", bkHex, "-out", out)...)...); err != nil {
		t.Fatalf("backup: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("archive missing: %v", err)
	}

	// Restore into a fresh vault.
	dir2, key2 := setupVault(t)
	base2 := []string{"-dir", dir2, "-key", key2}
	if err := run(t, append([]string{"restore"}, append(base2, "-actor", "lee", "-backup-key", bkHex, "-in", out)...)...); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := run(t, append([]string{"get"}, append(base2, "-actor", "dr-a", "-id", "p1/enc-0")...)...); err != nil {
		t.Fatalf("get after restore: %v", err)
	}
	if err := run(t, append([]string{"verify"}, base2...)...); err != nil {
		t.Fatalf("verify after restore: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	dir, key := setupVault(t)
	if err := run(t, "frobnicate"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("unknown command: %v", err)
	}
	if err := run(t, "get", "-key", key, "-actor", "dr-a", "-id", "x"); err == nil {
		t.Error("missing -dir accepted")
	}
	if err := run(t, "get", "-dir", dir, "-key", "nothex", "-actor", "dr-a", "-id", "x"); err == nil {
		t.Error("bad key accepted")
	}
	if err := run(t, "get", "-dir", dir, "-key", key, "-actor", "dr-a", "-id", "ghost"); err == nil {
		t.Error("missing record accepted")
	}
	// Denied actor surfaces as an error.
	if err := run(t, "audit", "-dir", dir, "-key", key, "-actor", "dr-a"); err == nil {
		t.Error("physician audit query accepted")
	}
	if err := run(t, "grant", "-dir", dir, "-principal", "x", "-roles", "warlock"); err == nil {
		t.Error("unknown role accepted")
	}
}
