// Command medvault is the operator CLI for a durable MedVault directory.
//
// Every subcommand acts as an authenticated principal (-actor); access
// decisions and denials land in the tamper-evident audit trail exactly as
// they do through the HTTP API.
//
// Usage:
//
//	medvault init  -dir DIR                         create a vault, print a fresh master key
//	medvault grant -dir DIR -principal P -roles R   grant roles (physician,nurse,billing-clerk,
//	                                                compliance-officer,archivist,admin)
//	medvault put     -dir DIR -key HEX -actor A -id I -mrn M -patient NAME -category C -title T -body B [-codes C1,C2]
//	medvault get     -dir DIR -key HEX -actor A -id I [-version N]
//	medvault history -dir DIR -key HEX -actor A -id I
//	medvault correct -dir DIR -key HEX -actor A -id I -body B [-title T]
//	medvault search  -dir DIR -key HEX -actor A -q KEYWORD
//	medvault shred   -dir DIR -key HEX -actor A -id I
//	medvault expired -dir DIR -key HEX
//	medvault audit   -dir DIR -key HEX -actor A [-record I] [-denied]
//	medvault custody -dir DIR -key HEX -actor A -id I
//	medvault verify  -dir DIR -key HEX
//	medvault disclosures -dir DIR -key HEX -actor A -mrn M
//	medvault prove   -dir DIR -key HEX -actor A -id I -version N
//	medvault hold    -dir DIR -key HEX -actor A -id I -reason R
//	medvault release -dir DIR -key HEX -actor A -id I
//	medvault holds   -dir DIR -key HEX
//	medvault breakglass -dir DIR -key HEX -actor A -reason R [-minutes M]
//	medvault sanitize -dir DIR -key HEX -actor A
//	medvault backup  -dir DIR -key HEX -actor A -backup-key HEX -out FILE
//	medvault restore -dir DIR -key HEX -actor A -backup-key HEX -in FILE
//	medvault flight  -dir DIR [-op SUB] [-trace ID] [-record HASH] [-limit N] [-bundles]
//
// flight is the offline black-box reader: it decodes the persisted flight
// recorder segments and postmortem bundles from a (possibly crashed) data
// directory without opening the vault and without the master key.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"medvault/internal/audit"
	"medvault/internal/backup"
	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/faultfs"
	"medvault/internal/vaultcfg"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	if err := dispatch(cmd, args); err != nil {
		fmt.Fprintln(os.Stderr, "medvault:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: medvault <init|grant|put|get|history|correct|search|shred|expired|audit|custody|verify|disclosures|prove|hold|release|holds|breakglass|sanitize|backup|restore|flight> [flags]
run 'medvault <command> -h' for command flags`)
}

// vaultFlags holds the flags every vault-touching command shares.
type vaultFlags struct {
	fs    *flag.FlagSet
	dir   *string
	key   *string
	actor *string
}

func newVaultFlags(name string) vaultFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return vaultFlags{
		fs:    fs,
		dir:   fs.String("dir", "", "vault directory (required)"),
		key:   fs.String("key", os.Getenv("MEDVAULT_KEY"), "master key, 64 hex chars (or $MEDVAULT_KEY)"),
		actor: fs.String("actor", "", "acting principal"),
	}
}

func (vf vaultFlags) open() (*core.Cluster, error) {
	if *vf.dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	master, err := vaultcfg.ParseMasterKey(*vf.key)
	if err != nil {
		return nil, err
	}
	return vaultcfg.Open(*vf.dir, "medvault", master)
}

func dispatch(cmd string, args []string) error {
	switch cmd {
	case "init":
		return cmdInit(args)
	case "grant":
		return cmdGrant(args)
	case "put":
		return cmdPut(args)
	case "get":
		return cmdGet(args)
	case "history":
		return cmdHistory(args)
	case "correct":
		return cmdCorrect(args)
	case "search":
		return cmdSearch(args)
	case "shred":
		return cmdShred(args)
	case "expired":
		return cmdExpired(args)
	case "audit":
		return cmdAudit(args)
	case "custody":
		return cmdCustody(args)
	case "verify":
		return cmdVerify(args)
	case "disclosures":
		return cmdDisclosures(args)
	case "sanitize":
		return cmdSanitize(args)
	case "breakglass":
		return cmdBreakGlass(args)
	case "hold":
		return cmdHold(args)
	case "release":
		return cmdRelease(args)
	case "holds":
		return cmdHolds(args)
	case "prove":
		return cmdProve(args)
	case "backup":
		return cmdBackup(args)
	case "restore":
		return cmdRestore(args)
	case "flight":
		return cmdFlight(args)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "", "vault directory to create")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	master, hexKey, err := vaultcfg.GenerateMasterKey()
	if err != nil {
		return err
	}
	v, err := vaultcfg.Open(*dir, "medvault", master)
	if err != nil {
		return err
	}
	if err := v.Close(); err != nil {
		return err
	}
	fmt.Printf("vault created at %s\n", *dir)
	fmt.Printf("master key (store in your KMS — unrecoverable if lost):\n%s\n", hexKey)
	return nil
}

func cmdGrant(args []string) error {
	fs := flag.NewFlagSet("grant", flag.ExitOnError)
	dir := fs.String("dir", "", "vault directory")
	principal := fs.String("principal", "", "principal ID")
	roles := fs.String("roles", "", "comma-separated roles")
	fs.Parse(args)
	if *dir == "" || *principal == "" || *roles == "" {
		return fmt.Errorf("-dir, -principal, and -roles are required")
	}
	if err := vaultcfg.Grant(*dir, *principal, strings.Split(*roles, ",")); err != nil {
		return err
	}
	fmt.Printf("granted %s: %s\n", *principal, *roles)
	return nil
}

func cmdPut(args []string) error {
	vf := newVaultFlags("put")
	var (
		id       = vf.fs.String("id", "", "record ID")
		mrn      = vf.fs.String("mrn", "", "medical record number")
		patient  = vf.fs.String("patient", "", "patient name")
		category = vf.fs.String("category", "clinical", "record category")
		title    = vf.fs.String("title", "", "note title")
		body     = vf.fs.String("body", "", "note body")
		codes    = vf.fs.String("codes", "", "comma-separated diagnosis codes")
	)
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	rec := ehr.Record{
		ID:        *id,
		MRN:       *mrn,
		Patient:   *patient,
		Category:  ehr.Category(*category),
		Author:    *vf.actor,
		CreatedAt: time.Now().UTC(),
		Title:     *title,
		Body:      *body,
	}
	if *codes != "" {
		rec.Codes = strings.Split(*codes, ",")
	}
	ver, err := v.Put(*vf.actor, rec)
	if err != nil {
		return err
	}
	fmt.Printf("stored %s v%d (leaf %d)\n", rec.ID, ver.Number, ver.LeafIndex)
	return nil
}

func printRecord(rec ehr.Record, ver core.Version) {
	fmt.Printf("id:       %s (v%d by %s at %s)\n", rec.ID, ver.Number, ver.Author, ver.Timestamp.Format(time.RFC3339))
	fmt.Printf("patient:  %s (MRN %s)\n", rec.Patient, rec.MRN)
	fmt.Printf("category: %s\n", rec.Category)
	fmt.Printf("title:    %s\n", rec.Title)
	fmt.Printf("codes:    %s\n", strings.Join(rec.Codes, ", "))
	fmt.Printf("body:     %s\n", rec.Body)
}

func cmdGet(args []string) error {
	vf := newVaultFlags("get")
	id := vf.fs.String("id", "", "record ID")
	version := vf.fs.Uint64("version", 0, "specific version (0 = latest)")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	var rec ehr.Record
	var ver core.Version
	if *version == 0 {
		rec, ver, err = v.Get(*vf.actor, *id)
	} else {
		rec, ver, err = v.GetVersion(*vf.actor, *id, *version)
	}
	if err != nil {
		return err
	}
	printRecord(rec, ver)
	return nil
}

func cmdHistory(args []string) error {
	vf := newVaultFlags("history")
	id := vf.fs.String("id", "", "record ID")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	hist, err := v.History(*vf.actor, *id)
	if err != nil {
		return err
	}
	for _, ver := range hist {
		fmt.Printf("v%d  %s  by %s  leaf=%d  cthash=%x…\n",
			ver.Number, ver.Timestamp.Format(time.RFC3339), ver.Author, ver.LeafIndex, ver.CtHash[:8])
	}
	return nil
}

func cmdCorrect(args []string) error {
	vf := newVaultFlags("correct")
	id := vf.fs.String("id", "", "record ID")
	title := vf.fs.String("title", "", "replacement title (empty = keep)")
	body := vf.fs.String("body", "", "replacement body")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	rec, _, err := v.Get(*vf.actor, *id)
	if err != nil {
		return err
	}
	if *title != "" {
		rec.Title = *title
	}
	rec.Body = *body
	rec.Author = *vf.actor
	ver, err := v.Correct(*vf.actor, rec)
	if err != nil {
		return err
	}
	fmt.Printf("corrected %s: now v%d\n", *id, ver.Number)
	return nil
}

func cmdSearch(args []string) error {
	vf := newVaultFlags("search")
	q := vf.fs.String("q", "", "keyword")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	hits, err := v.Search(*vf.actor, *q)
	if err != nil {
		return err
	}
	for _, id := range hits {
		fmt.Println(id)
	}
	fmt.Fprintf(os.Stderr, "%d records\n", len(hits))
	return nil
}

func cmdShred(args []string) error {
	vf := newVaultFlags("shred")
	id := vf.fs.String("id", "", "record ID")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	if err := v.Shred(*vf.actor, *id); err != nil {
		return err
	}
	fmt.Printf("securely deleted %s (data key destroyed)\n", *id)
	return nil
}

func cmdExpired(args []string) error {
	vf := newVaultFlags("expired")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	for _, id := range v.ExpiredRecords() {
		fmt.Println(id)
	}
	return nil
}

func cmdAudit(args []string) error {
	vf := newVaultFlags("audit")
	record := vf.fs.String("record", "", "filter by record ID")
	denied := vf.fs.Bool("denied", false, "denied attempts only")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	events, err := v.AuditEvents(*vf.actor, audit.Query{Record: *record, DeniedOnly: *denied})
	if err != nil {
		return err
	}
	for _, e := range events {
		fmt.Println(e)
	}
	fmt.Fprintf(os.Stderr, "%d events\n", len(events))
	return nil
}

func cmdCustody(args []string) error {
	vf := newVaultFlags("custody")
	id := vf.fs.String("id", "", "record ID")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	chain, err := v.Provenance(*vf.actor, *id)
	if err != nil {
		return err
	}
	for _, e := range chain {
		fmt.Printf("#%d %s %s by %s on %s", e.Index, e.Timestamp.Format(time.RFC3339), e.Type, e.Actor, e.System)
		if e.Peer != "" {
			fmt.Printf(" (peer %s)", e.Peer)
		}
		fmt.Println()
	}
	return nil
}

func cmdVerify(args []string) error {
	vf := newVaultFlags("verify")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	rep, err := v.VerifyAll(nil, nil)
	if err != nil {
		return fmt.Errorf("INTEGRITY FAILURE: %w", err)
	}
	fmt.Printf("OK: %d records, %d versions, %d audit events, %d custody chains verified\n",
		rep.RecordsChecked, rep.VersionsChecked, rep.AuditEvents, rep.ProvenanceChains)
	for i, head := range v.Heads() {
		if v.NumShards() > 1 {
			fmt.Printf("shard %d signed tree head: size=%d root=%x…\n", i, head.Size, head.Root[:8])
		} else {
			fmt.Printf("signed tree head: size=%d root=%x…\n", head.Size, head.Root[:8])
		}
	}
	return nil
}

func cmdDisclosures(args []string) error {
	vf := newVaultFlags("disclosures")
	mrn := vf.fs.String("mrn", "", "patient MRN")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	ds, err := v.AccountingOfDisclosures(*vf.actor, *mrn)
	if err != nil {
		return err
	}
	for _, d := range ds {
		flag := ""
		if d.BreakGlass {
			flag = " [BREAK-GLASS]"
		}
		fmt.Printf("%s  %-12s %-10s %s [%s]%s\n",
			d.Timestamp.Format(time.RFC3339), d.Actor, d.Action, d.Record, d.Outcome, flag)
	}
	fmt.Fprintf(os.Stderr, "%d disclosures for MRN %s\n", len(ds), *mrn)
	return nil
}

func cmdBreakGlass(args []string) error {
	vf := newVaultFlags("breakglass")
	reason := vf.fs.String("reason", "", "emergency justification (required, audited)")
	minutes := vf.fs.Int("minutes", 60, "grant duration in minutes")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	if err := v.BreakGlass(*vf.actor, *reason, time.Duration(*minutes)*time.Minute); err != nil {
		return err
	}
	fmt.Printf("break-glass granted to %s for %d minutes (audited): %s\n", *vf.actor, *minutes, *reason)
	fmt.Println("NOTE: grants are in-memory; they apply to operations in long-running processes (medvaultd), not across CLI invocations")
	return nil
}

func cmdHold(args []string) error {
	vf := newVaultFlags("hold")
	id := vf.fs.String("id", "", "record ID")
	reason := vf.fs.String("reason", "", "hold justification (required)")
	vf.fs.Parse(args)
	if *reason == "" {
		return fmt.Errorf("-reason is required for a legal hold")
	}
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	if err := v.PlaceHold(*vf.actor, *id, *reason); err != nil {
		return err
	}
	fmt.Printf("legal hold placed on %s (durable, audited): %s\n", *id, *reason)
	return nil
}

func cmdRelease(args []string) error {
	vf := newVaultFlags("release")
	id := vf.fs.String("id", "", "record ID")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	if err := v.ReleaseHold(*vf.actor, *id); err != nil {
		return err
	}
	fmt.Printf("legal hold released on %s\n", *id)
	return nil
}

func cmdHolds(args []string) error {
	vf := newVaultFlags("holds")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	for _, h := range v.Retention().Holds() {
		fmt.Printf("%s  placed %s  reason: %s\n", h.Record, h.Placed.Format(time.RFC3339), h.Reason)
	}
	return nil
}

func cmdSanitize(args []string) error {
	vf := newVaultFlags("sanitize")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	dropped, reclaimed, err := v.SanitizeMedia(*vf.actor)
	if err != nil {
		return err
	}
	fmt.Printf("media sanitized: %d shredded version(s) removed, %d bytes reclaimed\n", dropped, reclaimed)
	return nil
}

func cmdProve(args []string) error {
	vf := newVaultFlags("prove")
	id := vf.fs.String("id", "", "record ID")
	version := vf.fs.Uint64("version", 1, "version to prove")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	proof, err := v.ProveVersion(*vf.actor, *id, *version)
	if err != nil {
		return err
	}
	// Self-check before printing, then emit the verifier's inputs.
	if err := core.VerifyVersionProof(v.PublicKey(), proof, nil); err != nil {
		return fmt.Errorf("generated proof failed self-verification: %w", err)
	}
	fmt.Printf("record:     %s v%d\n", proof.RecordID, proof.Version)
	fmt.Printf("cthash:     %x\n", proof.CtHash)
	fmt.Printf("leaf:       %d of %d\n", proof.LeafIndex, proof.Head.Size)
	fmt.Printf("head root:  %x\n", proof.Head.Root)
	fmt.Printf("head sig:   %x\n", proof.Head.Signature)
	fmt.Printf("vault key:  %s\n", v.PublicKey())
	fmt.Printf("path (%d):\n", len(proof.Inclusion.Hashes))
	for i, h := range proof.Inclusion.Hashes {
		fmt.Printf("  %2d %x\n", i, h)
	}
	fmt.Println("proof verifies against the vault public key OK")
	return nil
}

func cmdBackup(args []string) error {
	vf := newVaultFlags("backup")
	bkey := vf.fs.String("backup-key", "", "backup key, 64 hex chars")
	out := vf.fs.String("out", "", "output archive file")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	key, err := vaultcfg.ParseMasterKey(*bkey)
	if err != nil {
		return fmt.Errorf("backup key: %w", err)
	}
	arch, err := backup.Create(v, *vf.actor, key, *out)
	if err != nil {
		return err
	}
	if err := backup.SaveArchive(faultfs.OS{}, *out, arch); err != nil {
		return err
	}
	fmt.Printf("backed up %d records to %s (%d bytes, sealed)\n", len(arch.Manifest.Entries), *out, len(backup.Encode(arch)))
	return nil
}

func cmdRestore(args []string) error {
	vf := newVaultFlags("restore")
	bkey := vf.fs.String("backup-key", "", "backup key, 64 hex chars")
	in := vf.fs.String("in", "", "archive file")
	vf.fs.Parse(args)
	v, err := vf.open()
	if err != nil {
		return err
	}
	defer v.Close()
	key, err := vaultcfg.ParseMasterKey(*bkey)
	if err != nil {
		return fmt.Errorf("backup key: %w", err)
	}
	arch, err := backup.LoadArchive(faultfs.OS{}, *in)
	if err != nil {
		return err
	}
	n, err := backup.Restore(arch, key, v, *vf.actor)
	if err != nil {
		return err
	}
	fmt.Printf("restored %d records from %s (archive verified)\n", n, *in)
	return nil
}
