package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"medvault/internal/obs"
)

// Machine-readable bench output. The human tables are for reading; CI wants
// something it can archive and diff. writeBenchJSON serializes the run's
// aggregate numbers — per-op and per-span quantiles read back from the same
// process-wide registry the tables render, plus the tracer's lifetime
// counters — to the first free BENCH_<n>.json in the working directory.
// The schema is versioned ("medvault-bench/v2") and documented in
// EXPERIMENTS.md; consumers must ignore unknown fields.

// benchSchema versions the JSON layout. Bump it on any incompatible change.
// v2 added the top-level shard count plus the get-phase and per-shard op
// fields on scaling rows.
const benchSchema = "medvault-bench/v2"

// benchReport is the top-level BENCH_<n>.json document.
type benchReport struct {
	Schema      string       `json:"schema"`
	Generated   time.Time    `json:"generated"`
	Mode        string       `json:"mode"`   // "experiments", "scaling", or "reads"
	Scale       string       `json:"scale"`  // "full" or "quick"
	Shards      int          `json:"shards"` // cluster shard count the run used (1 = classic vault)
	Backend     string       `json:"backend,omitempty"`
	CacheConfig string       `json:"cache_config,omitempty"` // reads mode: "enabled" or "disabled"
	GoMaxProcs  int          `json:"gomaxprocs"`
	Ops         []histRow    `json:"ops"`
	Spans       []histRow    `json:"spans"`
	Traces      traceCounts  `json:"traces"`
	Caches      []cacheRow   `json:"caches"`
	Scaling     []scalingRow `json:"scaling,omitempty"`
}

// cacheRow is one read-cache layer's lifetime accounting, read back from the
// medvault_cache_*_total registry families medvaultd exposes on /metrics.
type cacheRow struct {
	Cache     string  `json:"cache"` // "dek", "block", or "negative"
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"` // hits / (hits + misses); 0 when idle
}

// histRow is one latency distribution: a vault op or a trace span.
type histRow struct {
	Name   string  `json:"name"`
	Count  uint64  `json:"count"`
	TotalS float64 `json:"total_s"`
	MeanS  float64 `json:"mean_s"`
	P50S   float64 `json:"p50_s"`
	P95S   float64 `json:"p95_s"`
	P99S   float64 `json:"p99_s"`
}

// traceCounts is the tracer's lifetime accounting for the run.
type traceCounts struct {
	Started    uint64 `json:"started"`
	Finished   uint64 `json:"finished"`
	SampledOut uint64 `json:"sampled_out"`
}

// scalingRow is one line of the -workers table. Shards is the row's cluster
// size (a multi-count -shards run tables several). The shard_puts/shard_gets
// arrays (index = shard number) are present only for multi-shard runs; they
// are read from the shard-labeled counter series, so they double as a check
// that routing actually spread the deterministic ID set.
type scalingRow struct {
	Shards       int      `json:"shards"`
	Workers      int      `json:"workers"`
	Puts         uint64   `json:"puts"`
	Seconds      float64  `json:"seconds"`
	PutsPerSec   float64  `json:"puts_per_sec"`
	Speedup      float64  `json:"speedup"`
	Gets         uint64   `json:"gets"`
	GetSeconds   float64  `json:"get_seconds"`
	GetsPerSec   float64  `json:"gets_per_sec"`
	GetSpeedup   float64  `json:"get_speedup"`
	GroupCommits uint64   `json:"group_commits"`
	WALAppends   uint64   `json:"wal_appends"`
	ShardPuts    []uint64 `json:"shard_puts,omitempty"`
	ShardGets    []uint64 `json:"shard_gets,omitempty"`
}

// writeBenchJSON fills rep's registry-derived fields and writes it to the
// first free BENCH_<n>.json, printing the chosen path.
func writeBenchJSON(rep benchReport) error {
	rep.Schema = benchSchema
	rep.Generated = time.Now().UTC()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.Ops = histRows("medvault_core_op_seconds", "op")
	rep.Spans = histRows("medvault_span_seconds", "span")
	rep.Traces.Started, rep.Traces.Finished, rep.Traces.SampledOut = obs.DefaultTracer.Stats()
	rep.Caches = cacheRows()
	if rep.Ops == nil {
		rep.Ops = []histRow{}
	}
	if rep.Spans == nil {
		rep.Spans = []histRow{}
	}

	path, f, err := nextBenchFile()
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("\nwrote %s (schema %s)\n", path, benchSchema)
	return nil
}

// histRows reads one histogram family from the registry, merged by label.
func histRows(metric, label string) []histRow {
	for _, f := range obs.Default.Snapshot() {
		if f.Name != metric {
			continue
		}
		merged := mergeByLabel(f, label)
		var rows []histRow
		for _, name := range sortedKeys(merged) {
			h := merged[name]
			if h.Count == 0 {
				continue
			}
			rows = append(rows, histRow{
				Name: name, Count: h.Count, TotalS: h.Sum, MeanS: h.Mean(),
				P50S: h.Quantile(0.50), P95S: h.Quantile(0.95), P99S: h.Quantile(0.99),
			})
		}
		return rows
	}
	return nil
}

// cacheRows reads each read-cache layer's counters from the registry,
// summed over the shard label so multi-shard runs report whole-cluster
// per-layer totals.
func cacheRows() []cacheRow {
	rows := make([]cacheRow, 0, 3)
	for _, layer := range []string{"dek", "block", "negative"} {
		l := obs.L("cache", layer)
		row := cacheRow{
			Cache:     layer,
			Hits:      uint64(counterSum("medvault_cache_hits_total", l)),
			Misses:    uint64(counterSum("medvault_cache_misses_total", l)),
			Evictions: uint64(counterSum("medvault_cache_evictions_total", l)),
		}
		if total := row.Hits + row.Misses; total > 0 {
			row.HitRate = float64(row.Hits) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows
}

// nextBenchFile creates the first BENCH_<n>.json that does not already
// exist, so successive runs in one directory never clobber each other.
// Numbering starts at 0: BENCH_0.json is the committed baseline of the
// bench trajectory.
func nextBenchFile() (string, *os.File, error) {
	for n := 0; n < 10000; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			return path, f, nil
		}
		if !os.IsExist(err) {
			return "", nil, err
		}
	}
	return "", nil, fmt.Errorf("no free BENCH_<n>.json slot")
}
