package main

import (
	"strings"
	"testing"
)

func TestRunQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick harness run still takes ~1s")
	}
	if err := run("all", "quick", false); err != nil {
		t.Fatalf("run(all, quick): %v", err)
	}
}

func TestRunSelection(t *testing.T) {
	if err := run("e1,E3", "quick", false); err != nil {
		t.Fatalf("run(e1,E3): %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("e42", "quick", false); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("bad experiment id: %v", err)
	}
	if err := run("all", "enormous", false); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Errorf("bad scale: %v", err)
	}
}
