// Command medbench regenerates the experiment tables E1–E9 described in
// DESIGN.md, which operationalize the paper's requirements (its Section 3)
// and storage-model analysis (Section 4) as measurements.
//
// Usage:
//
//	medbench                  # run everything at full scale
//	medbench -scale quick     # CI-sized run
//	medbench -e e1,e3         # selected experiments only
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"medvault/internal/experiments"
	"medvault/internal/obs"
)

func main() {
	var (
		which = flag.String("e", "all", "comma-separated experiment ids (e1..e9) or 'all'")
		scale = flag.String("scale", "full", "'full' or 'quick'")
	)
	flag.Parse()
	if err := run(*which, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "medbench:", err)
		os.Exit(1)
	}
}

func run(which, scale string) error {
	if scale != "full" && scale != "quick" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	n2, n4, n5, n6, n7, n8, n9 := 500, []int{200, 1000, 5000}, 40, 50, []int{1000, 10000, 50000}, 300, 500
	if scale == "quick" {
		n2, n4, n5, n6, n7, n8, n9 = 100, []int{100, 400}, 10, 10, []int{500, 2000}, 60, 100
	}
	e2sizes := []int{200, 1000, 4000}
	if scale == "quick" {
		e2sizes = []int{100, 400}
	}
	all := map[string]func() (experiments.Table, error){
		"e1":  experiments.E1,
		"e2":  func() (experiments.Table, error) { return experiments.E2(n2) },
		"e2b": func() (experiments.Table, error) { return experiments.E2Series(e2sizes) },
		"e3":  experiments.E3,
		"e4":  func() (experiments.Table, error) { return experiments.E4(n4) },
		"e5":  func() (experiments.Table, error) { return experiments.E5(n5) },
		"e6":  func() (experiments.Table, error) { return experiments.E6(n6) },
		"e7":  func() (experiments.Table, error) { return experiments.E7(n7) },
		"e8":  func() (experiments.Table, error) { return experiments.E8(n8) },
		"e9":  func() (experiments.Table, error) { return experiments.E9(n9) },
	}
	order := []string{"e1", "e2", "e2b", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}

	var selected []string
	if which == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(which, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := all[id]; !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e9 or e2b)", id)
			}
			selected = append(selected, id)
		}
	}

	fmt.Printf("MedVault experiment harness — scale=%s, %s\n\n", scale, time.Now().Format(time.RFC3339))
	for _, id := range selected {
		start := time.Now()
		tbl, err := all[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %s)\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}
	printMetricsBreakdown(os.Stdout)
	return nil
}

// printMetricsBreakdown renders the per-mechanism cost split accumulated in
// the process-wide metrics registry across every experiment that just ran.
// The experiments report end-to-end numbers; this table attributes them —
// how much of the run went to sealing vs indexing vs auditing vs fsync —
// from the very same instrumentation medvaultd exposes on /metrics.
func printMetricsBreakdown(w *os.File) {
	fams := map[string]obs.FamilySnapshot{}
	for _, f := range obs.Default.Snapshot() {
		fams[f.Name] = f
	}
	hist := func(name string) (obs.HistSnapshot, bool) {
		f, ok := fams[name]
		if !ok {
			return obs.HistSnapshot{}, false
		}
		h, ok := f.MergedHist()
		return h, ok && h.Count > 0
	}

	mechanisms := []struct{ label, metric string }{
		{"encrypt (seal)", "medvault_crypto_seal_seconds"},
		{"decrypt (open)", "medvault_crypto_open_seconds"},
		{"index add", "medvault_index_add_seconds"},
		{"index search", "medvault_index_search_seconds"},
		{"audit append", "medvault_audit_append_seconds"},
		{"WAL fsync", "medvault_wal_fsync_seconds"},
		{"blockstore append", "medvault_blockstore_append_seconds"},
		{"blockstore read", "medvault_blockstore_read_seconds"},
	}
	fmt.Fprintln(w, "Per-mechanism latency breakdown (process-wide metrics registry, all experiments)")
	fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
		"mechanism", "count", "total", "mean", "p50", "p95", "p99")
	for _, m := range mechanisms {
		h, ok := hist(m.metric)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
			m.label, h.Count, secs(h.Sum), secs(h.Mean()),
			secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
	}

	// Vault operations, merged across outcomes per op label.
	if f, ok := fams["medvault_core_op_seconds"]; ok {
		byOp := map[string]obs.HistSnapshot{}
		for _, s := range f.Series {
			op := "unknown"
			for _, l := range s.Labels {
				if l.Key == "op" {
					op = l.Value
				}
			}
			if prev, seen := byOp[op]; seen {
				byOp[op] = prev.Merge(*s.Hist)
			} else {
				byOp[op] = *s.Hist
			}
		}
		ops := make([]string, 0, len(byOp))
		for op := range byOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		fmt.Fprintln(w, "\nVault operations (all outcomes)")
		fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
			"op", "count", "total", "mean", "p50", "p95", "p99")
		for _, op := range ops {
			h := byOp[op]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
				op, h.Count, secs(h.Sum), secs(h.Mean()),
				secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
		}
	}
}

// secs renders a duration measured in seconds at a bench-friendly precision.
func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
