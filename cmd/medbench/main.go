// Command medbench regenerates the experiment tables E1–E9 described in
// DESIGN.md, which operationalize the paper's requirements (its Section 3)
// and storage-model analysis (Section 4) as measurements.
//
// Usage:
//
//	medbench                  # run everything at full scale
//	medbench -scale quick     # CI-sized run
//	medbench -e e1,e3         # selected experiments only
//	medbench -workers 8       # concurrency scaling table instead of E1–E9
//	medbench -workers 8 -shards 4     # same table over a 4-shard cluster
//	medbench -reads 20000     # read-path benchmark (repeated Gets, hot cache)
//	medbench -reads 20000 -no-cache   # same workload with every cache layer off
//	medbench -json            # also write BENCH_<n>.json (schema medvault-bench/v2)
//
// -json writes the run's aggregate numbers — per-op and per-span latency
// quantiles, trace counters, and (in -workers mode) the scaling rows — to
// the first free BENCH_<n>.json in the working directory, so CI can archive
// and diff runs without scraping the human-readable tables. The schema is
// documented in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/experiments"
	"medvault/internal/obs"
	"medvault/internal/vcrypto"
)

func main() {
	var (
		which   = flag.String("e", "all", "comma-separated experiment ids (e1..e9) or 'all'")
		scale   = flag.String("scale", "full", "'full' or 'quick'")
		workers = flag.Int("workers", 0, "when > 0, run the throughput-vs-goroutines scaling table up to this many workers instead of the experiments")
		backend = flag.String("backend", "memory", "vault backend for -workers: 'memory' or 'file' (file adds the WAL + fsync path, where group commit pays off)")
		jsonOut = flag.Bool("json", false, "also write machine-readable results to the first free BENCH_<n>.json")
		reads   = flag.Int("reads", 0, "when > 0, run the read-path benchmark: this many Gets over a small warmed record set instead of the experiments")
		noCache = flag.Bool("no-cache", false, "disable every read-cache layer (DEK, block, negative) — the before side of a cache before/after")
		shards  = flag.String("shards", "1", "shard count for the -workers and -reads vaults (1 = classic single vault); -workers also accepts a comma-separated list (e.g. 1,4) to table each count in one run")
	)
	flag.Parse()
	shardCounts, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "medbench:", err)
		os.Exit(1)
	}
	if *reads > 0 {
		if len(shardCounts) != 1 {
			fmt.Fprintln(os.Stderr, "medbench: -reads takes a single -shards count")
			os.Exit(1)
		}
		if err := runReads(*reads, *backend, *scale, shardCounts[0], *noCache, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "medbench:", err)
			os.Exit(1)
		}
		return
	}
	if *workers > 0 {
		if err := runScaling(*workers, *backend, *scale, shardCounts, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "medbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*which, *scale, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "medbench:", err)
		os.Exit(1)
	}
}

func run(which, scale string, jsonOut bool) error {
	if scale != "full" && scale != "quick" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	n2, n4, n5, n6, n7, n8, n9 := 500, []int{200, 1000, 5000}, 40, 50, []int{1000, 10000, 50000}, 300, 500
	if scale == "quick" {
		n2, n4, n5, n6, n7, n8, n9 = 100, []int{100, 400}, 10, 10, []int{500, 2000}, 60, 100
	}
	e2sizes := []int{200, 1000, 4000}
	if scale == "quick" {
		e2sizes = []int{100, 400}
	}
	all := map[string]func() (experiments.Table, error){
		"e1":  experiments.E1,
		"e2":  func() (experiments.Table, error) { return experiments.E2(n2) },
		"e2b": func() (experiments.Table, error) { return experiments.E2Series(e2sizes) },
		"e3":  experiments.E3,
		"e4":  func() (experiments.Table, error) { return experiments.E4(n4) },
		"e5":  func() (experiments.Table, error) { return experiments.E5(n5) },
		"e6":  func() (experiments.Table, error) { return experiments.E6(n6) },
		"e7":  func() (experiments.Table, error) { return experiments.E7(n7) },
		"e8":  func() (experiments.Table, error) { return experiments.E8(n8) },
		"e9":  func() (experiments.Table, error) { return experiments.E9(n9) },
	}
	order := []string{"e1", "e2", "e2b", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}

	var selected []string
	if which == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(which, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := all[id]; !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e9 or e2b)", id)
			}
			selected = append(selected, id)
		}
	}

	fmt.Printf("MedVault experiment harness — scale=%s, %s\n\n", scale, time.Now().Format(time.RFC3339))
	for _, id := range selected {
		start := time.Now()
		tbl, err := all[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %s)\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}
	printMetricsBreakdown(os.Stdout)
	if jsonOut {
		return writeBenchJSON(benchReport{Mode: "experiments", Scale: scale, Shards: 1})
	}
	return nil
}

// runScaling measures Put and Get throughput against one vault (or one
// multi-shard cluster) as the number of concurrent workers grows — the
// end-to-end check on the striped lock manager, WAL group commit, and shard
// routing. Every number in the table is read back from the process-wide
// metrics registry (counter deltas around each run), not from harness-side
// bookkeeping, so the table exercises the same observability surface
// medvaultd exposes on /metrics.
func runScaling(maxWorkers int, backend, scale string, shardCounts []int, jsonOut bool) error {
	if backend != "memory" && backend != "file" {
		return fmt.Errorf("unknown backend %q (want memory or file)", backend)
	}
	if scale != "full" && scale != "quick" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	total := 2000
	if backend == "file" {
		total = 1200 // every batch fsyncs; keep wall time sane
	}
	if scale == "quick" {
		total /= 5
	}

	series := []int{1}
	for w := 2; w < maxWorkers; w *= 2 {
		series = append(series, w)
	}
	if maxWorkers > 1 {
		series = append(series, maxWorkers)
	}

	fmt.Printf("(speedup is relative to the first table's 1-worker run; on a single-CPU host\n")
	fmt.Printf("the memory backend cannot exceed 1× — the file backend still gains from shared\n")
	fmt.Printf("fsyncs, and a sharded file cluster additionally overlaps per-shard WAL fsyncs)\n")

	// One table per shard count, every row's speedup measured against the
	// single baseline, so a 4-shard row reads directly as "× the 1-shard
	// 1-worker rate" when the list starts at 1.
	var putBase, getBase float64
	var rows []scalingRow
	for _, shards := range shardCounts {
		fmt.Printf("\nMedVault concurrency scaling — backend=%s, shards=%d, %d puts per run, GOMAXPROCS=%d\n\n",
			backend, shards, total, runtime.GOMAXPROCS(0))
		fmt.Printf("  %7s %8s %9s %10s %8s %8s %10s %8s", "workers", "puts", "seconds", "puts/sec", "speedup", "gets", "gets/sec", "gspeedup")
		if backend == "file" {
			fmt.Printf(" %8s %9s", "fsyncs", "batching")
		}
		fmt.Println()

		for _, w := range series {
			r, err := scalingRun(w, total, shards, backend)
			if err != nil {
				return err
			}
			if putBase == 0 {
				putBase = r.rate
			}
			if getBase == 0 {
				getBase = r.getRate
			}
			rows = append(rows, scalingRow{
				Shards: shards, Workers: w, Puts: r.puts, Seconds: r.secs,
				PutsPerSec: r.rate, Speedup: r.rate / putBase,
				Gets: r.gets, GetSeconds: r.getSecs,
				GetsPerSec: r.getRate, GetSpeedup: r.getRate / getBase,
				GroupCommits: r.groupCommits, WALAppends: r.walAppends,
				ShardPuts: r.shardPuts, ShardGets: r.shardGets,
			})
			fmt.Printf("  %7d %8d %9.3f %10.0f %7.2fx %8d %10.0f %7.2fx",
				w, r.puts, r.secs, r.rate, r.rate/putBase,
				r.gets, r.getRate, r.getRate/getBase)
			if backend == "file" {
				batching := float64(r.walAppends)
				if r.groupCommits > 0 {
					batching /= float64(r.groupCommits)
				}
				fmt.Printf(" %8d %9.1f", r.groupCommits, batching)
			}
			fmt.Println()
			if len(r.shardPuts) > 0 {
				fmt.Printf("  %7s per-shard puts %v, gets %v\n", "", r.shardPuts, r.shardGets)
			}
		}
	}
	if jsonOut {
		maxShards := 1
		for _, s := range shardCounts {
			if s > maxShards {
				maxShards = s
			}
		}
		return writeBenchJSON(benchReport{
			Mode: "scaling", Scale: scale, Backend: backend, Shards: maxShards, Scaling: rows,
		})
	}
	return nil
}

// parseShards parses the -shards flag: one shard count, or a comma-separated
// list of counts for -workers mode.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > core.MaxShards {
			return nil, fmt.Errorf("-shards %q: each count must be 1..%d", s, core.MaxShards)
		}
		out = append(out, n)
	}
	return out, nil
}

// runReads measures the hot read path: a small record set is written once,
// then hammered with Gets (plus a slice of unknown-ID probes for the
// negative-lookup layer). With the caches on, steady state is all hits —
// no AES-GCM DEK unwrap, no blockstore read; with -no-cache every Get pays
// the full pipeline. Running both and diffing the BENCH JSONs is the
// before/after the bench trajectory records.
func runReads(total int, backend, scale string, shards int, noCache, jsonOut bool) error {
	if backend != "memory" && backend != "file" {
		return fmt.Errorf("unknown backend %q (want memory or file)", backend)
	}
	if scale != "full" && scale != "quick" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	records := 200
	if scale == "quick" {
		records = 50
	}
	if records > total {
		records = total
	}

	cfg := core.Config{Name: "medbench-reads", Master: mustNewKey()}
	if noCache {
		cfg.DEKCacheEntries = -1
		cfg.BlockCacheBytes = -1
		cfg.NegCacheEntries = -1
	}
	if backend == "file" {
		dir, err := os.MkdirTemp("", "medbench-reads-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	v, err := core.OpenCluster(cfg, shards)
	if err != nil {
		return err
	}
	defer v.Close()
	a, err := core.NewAdapter(v)
	if err != nil {
		return err
	}
	for i := 0; i < records; i++ {
		rec := ehr.Record{
			ID:      fmt.Sprintf("read-%d", i),
			Patient: "Read Patient", MRN: fmt.Sprintf("mrn-read-%d", i),
			Category: ehr.CategoryClinical, Author: "bench-admin",
			CreatedAt: experiments.Epoch,
			Title:     "read-path probe", Body: "cache benchmark record body",
		}
		if err := a.Put(rec); err != nil {
			return err
		}
	}

	cacheState := "enabled"
	if noCache {
		cacheState = "disabled"
	}
	fmt.Printf("MedVault read-path benchmark — backend=%s, shards=%d, %d records, %d gets, caches %s\n\n",
		backend, shards, records, total, cacheState)

	known, unknown := 0, 0
	start := time.Now()
	for i := 0; i < total; i++ {
		if i%10 == 9 {
			// Unknown-ID probe: must stay ErrNotFound and still be audited;
			// with caches on, repeats are negative-cache hits.
			if _, err := a.Get(fmt.Sprintf("missing-%d", i%records)); err == nil {
				return fmt.Errorf("probe of nonexistent record unexpectedly succeeded")
			}
			unknown++
			continue
		}
		if _, err := a.Get(fmt.Sprintf("read-%d", i%records)); err != nil {
			return err
		}
		known++
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("  %d gets (%d known, %d unknown-ID probes) in %.3fs — %.0f gets/sec\n\n",
		total, known, unknown, elapsed, float64(total)/elapsed)
	printMetricsBreakdown(os.Stdout)
	printCacheCounters(os.Stdout)
	if jsonOut {
		return writeBenchJSON(benchReport{
			Mode: "reads", Scale: scale, Backend: backend, Shards: shards, CacheConfig: cacheState,
		})
	}
	return nil
}

// printCacheCounters renders the per-layer read-cache accounting.
func printCacheCounters(w *os.File) {
	fmt.Fprintln(w, "\nRead-cache counters (process-wide)")
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %9s\n", "cache", "hits", "misses", "evictions", "hit rate")
	for _, row := range cacheRows() {
		fmt.Fprintf(w, "  %-10s %10d %10d %10d %8.1f%%\n",
			row.Cache, row.Hits, row.Misses, row.Evictions, 100*row.HitRate)
	}
}

type scalingResult struct {
	puts         uint64
	secs         float64
	rate         float64
	gets         uint64
	getSecs      float64
	getRate      float64
	groupCommits uint64
	walAppends   uint64
	shardPuts    []uint64 // per-shard successful puts, nil when shards == 1
	shardGets    []uint64
}

// scaleRecordID names the i'th record of worker g in the w-worker series
// entry. The ID is a pure function of (w, g, i) — no timestamps, no
// randomness — so every run of a given table row writes the exact same ID
// set, and the records' spread over cluster shards (core.ShardOf over these
// IDs) is reproducible run-to-run and comparable across hosts.
func scaleRecordID(w, g, i int) string {
	return fmt.Sprintf("scale-w%d-g%d-%d", w, g, i)
}

// scalingRun drives total puts, then total read-backs, through a fresh
// vault (or shards-wide cluster) from w workers and reports registry
// counter deltas plus wall time for each phase.
func scalingRun(w, total, shards int, backend string) (scalingResult, error) {
	cfg := core.Config{Name: "medbench-scaling", Master: mustNewKey(), Clock: nil}
	var dir string
	if backend == "file" {
		var err error
		if dir, err = os.MkdirTemp("", "medbench-scaling-*"); err != nil {
			return scalingResult{}, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	v, err := core.OpenCluster(cfg, shards)
	if err != nil {
		return scalingResult{}, err
	}
	defer v.Close()
	a, err := core.NewAdapter(v)
	if err != nil {
		return scalingResult{}, err
	}

	putLabels := []obs.Label{obs.L("op", "put"), obs.L("outcome", "ok")}
	getLabels := []obs.Label{obs.L("op", "get"), obs.L("outcome", "ok")}
	putsBefore := counterSum("medvault_core_ops_total", putLabels...)
	gcBefore := counterValue("medvault_wal_group_commits_total")
	walBefore := counterValue("medvault_wal_appends_total")
	shardPutsBefore := shardOpCounts(shards, "put")
	shardGetsBefore := shardOpCounts(shards, "get")

	perWorker := total / w
	var wg sync.WaitGroup
	errs := make(chan error, w)
	start := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := ehr.Record{
					ID:      scaleRecordID(w, g, i),
					Patient: "Scaling Patient", MRN: fmt.Sprintf("mrn-%d-%d-%d", w, g, i),
					Category: ehr.CategoryClinical, Author: "bench-admin",
					CreatedAt: experiments.Epoch,
					Title:     "scaling note", Body: "throughput probe",
				}
				if err := a.Put(rec); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(errs)
	for err := range errs {
		return scalingResult{}, err
	}

	// Read-back phase: each worker re-reads the records it wrote, so the
	// Get side of the table covers the same ID spread (and, on a cluster,
	// the same shard routing) as the Put side just exercised. Gets are
	// orders of magnitude faster than fsynced puts, so each worker makes
	// several passes — one pass finishes in milliseconds, too short to
	// measure a rate against scheduler noise.
	const readRounds = 4
	getsBefore := counterSum("medvault_core_ops_total", getLabels...)
	gerrs := make(chan error, w)
	gstart := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < readRounds; r++ {
				for i := 0; i < perWorker; i++ {
					if _, err := a.Get(scaleRecordID(w, g, i)); err != nil {
						gerrs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	getElapsed := time.Since(gstart).Seconds()
	close(gerrs)
	for err := range gerrs {
		return scalingResult{}, err
	}

	puts := counterSum("medvault_core_ops_total", putLabels...) - putsBefore
	gets := counterSum("medvault_core_ops_total", getLabels...) - getsBefore
	return scalingResult{
		puts:         uint64(puts),
		secs:         elapsed,
		rate:         puts / elapsed,
		gets:         uint64(gets),
		getSecs:      getElapsed,
		getRate:      gets / getElapsed,
		groupCommits: uint64(counterValue("medvault_wal_group_commits_total") - gcBefore),
		walAppends:   uint64(counterValue("medvault_wal_appends_total") - walBefore),
		shardPuts:    shardDelta(shardOpCounts(shards, "put"), shardPutsBefore),
		shardGets:    shardDelta(shardOpCounts(shards, "get"), shardGetsBefore),
	}, nil
}

// shardOpCounts reads each shard's successful-op counter (the shard-labeled
// medvault_core_ops_total series a multi-shard cluster emits). Nil for a
// single vault, which has no shard label.
func shardOpCounts(shards int, op string) []float64 {
	if shards <= 1 {
		return nil
	}
	out := make([]float64, shards)
	for s := range out {
		out[s] = counterValue("medvault_core_ops_total",
			obs.L("op", op), obs.L("outcome", "ok"), obs.L("shard", strconv.Itoa(s)))
	}
	return out
}

// shardDelta subtracts per-shard before-counts from after-counts.
func shardDelta(after, before []float64) []uint64 {
	if after == nil {
		return nil
	}
	out := make([]uint64, len(after))
	for i := range after {
		out[i] = uint64(after[i] - before[i])
	}
	return out
}

// counterValue reads one counter series from the process registry; series
// labels must match wanted exactly (order-insensitive). Missing series read
// as zero, which is what a delta wants before the first increment.
func counterValue(name string, wanted ...obs.Label) float64 {
	for _, f := range obs.Default.Snapshot() {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			if len(s.Labels) != len(wanted) {
				continue
			}
			match := true
			for _, want := range wanted {
				found := false
				for _, l := range s.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					match = false
					break
				}
			}
			if match {
				return s.Value
			}
		}
	}
	return 0
}

// counterSum totals every series of one counter family whose labels are a
// superset of wanted. Where counterValue pins one exact series, counterSum
// folds a label dimension away: summing {op=put, outcome=ok} counts both the
// unlabeled single-vault series and every shard-labeled cluster series, so
// the same bench code reads totals regardless of sharding.
func counterSum(name string, wanted ...obs.Label) float64 {
	var sum float64
	for _, f := range obs.Default.Snapshot() {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			match := true
			for _, want := range wanted {
				found := false
				for _, l := range s.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					match = false
					break
				}
			}
			if match {
				sum += s.Value
			}
		}
	}
	return sum
}

func mustNewKey() vcrypto.Key {
	k, err := vcrypto.NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// printMetricsBreakdown renders the per-mechanism cost split accumulated in
// the process-wide metrics registry across every experiment that just ran.
// The experiments report end-to-end numbers; this table attributes them —
// how much of the run went to sealing vs indexing vs auditing vs fsync —
// from the very same instrumentation medvaultd exposes on /metrics.
func printMetricsBreakdown(w *os.File) {
	fams := map[string]obs.FamilySnapshot{}
	for _, f := range obs.Default.Snapshot() {
		fams[f.Name] = f
	}
	hist := func(name string) (obs.HistSnapshot, bool) {
		f, ok := fams[name]
		if !ok {
			return obs.HistSnapshot{}, false
		}
		h, ok := f.MergedHist()
		return h, ok && h.Count > 0
	}

	mechanisms := []struct{ label, metric string }{
		{"encrypt (seal)", "medvault_crypto_seal_seconds"},
		{"decrypt (open)", "medvault_crypto_open_seconds"},
		{"index add", "medvault_index_add_seconds"},
		{"index search", "medvault_index_search_seconds"},
		{"audit append", "medvault_audit_append_seconds"},
		{"WAL fsync", "medvault_wal_fsync_seconds"},
		{"blockstore append", "medvault_blockstore_append_seconds"},
		{"blockstore read", "medvault_blockstore_read_seconds"},
	}
	fmt.Fprintln(w, "Per-mechanism latency breakdown (process-wide metrics registry, all experiments)")
	fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
		"mechanism", "count", "total", "mean", "p50", "p95", "p99")
	for _, m := range mechanisms {
		h, ok := hist(m.metric)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
			m.label, h.Count, secs(h.Sum), secs(h.Mean()),
			secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
	}

	// Vault operations, merged across outcomes per op label.
	if f, ok := fams["medvault_core_op_seconds"]; ok {
		byOp := mergeByLabel(f, "op")
		fmt.Fprintln(w, "\nVault operations (all outcomes)")
		fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
			"op", "count", "total", "mean", "p50", "p95", "p99")
		for _, op := range sortedKeys(byOp) {
			h := byOp[op]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
				op, h.Count, secs(h.Sum), secs(h.Mean()),
				secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
		}
	}

	// Per-span breakdown from the tracer: the same numbers the mechanism
	// table shows, but carved along the trace's span taxonomy — so the
	// attribution matches what an operator sees on /debug/traces exactly.
	if f, ok := fams["medvault_span_seconds"]; ok {
		bySpan := mergeByLabel(f, "span")
		fmt.Fprintln(w, "\nPer-span latency breakdown (traced operations)")
		fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
			"span", "count", "total", "mean", "p50", "p95", "p99")
		for _, name := range sortedKeys(bySpan) {
			h := bySpan[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
				name, h.Count, secs(h.Sum), secs(h.Mean()),
				secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
		}
	}
}

// mergeByLabel folds a histogram family's series by one label's value,
// merging series that differ only in other labels (e.g. outcome).
func mergeByLabel(f obs.FamilySnapshot, key string) map[string]obs.HistSnapshot {
	out := map[string]obs.HistSnapshot{}
	for _, s := range f.Series {
		if s.Hist == nil {
			continue
		}
		val := "unknown"
		for _, l := range s.Labels {
			if l.Key == key {
				val = l.Value
			}
		}
		if prev, seen := out[val]; seen {
			out[val] = prev.Merge(*s.Hist)
		} else {
			out[val] = *s.Hist
		}
	}
	return out
}

func sortedKeys(m map[string]obs.HistSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// secs renders a duration measured in seconds at a bench-friendly precision.
func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
