// Command medbench regenerates the experiment tables E1–E9 described in
// DESIGN.md, which operationalize the paper's requirements (its Section 3)
// and storage-model analysis (Section 4) as measurements.
//
// Usage:
//
//	medbench                  # run everything at full scale
//	medbench -scale quick     # CI-sized run
//	medbench -e e1,e3         # selected experiments only
//	medbench -workers 8       # concurrency scaling table instead of E1–E9
//	medbench -reads 20000     # read-path benchmark (repeated Gets, hot cache)
//	medbench -reads 20000 -no-cache   # same workload with every cache layer off
//	medbench -json            # also write BENCH_<n>.json (schema medvault-bench/v1)
//
// -json writes the run's aggregate numbers — per-op and per-span latency
// quantiles, trace counters, and (in -workers mode) the scaling rows — to
// the first free BENCH_<n>.json in the working directory, so CI can archive
// and diff runs without scraping the human-readable tables. The schema is
// documented in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"medvault/internal/core"
	"medvault/internal/ehr"
	"medvault/internal/experiments"
	"medvault/internal/obs"
	"medvault/internal/vcrypto"
)

func main() {
	var (
		which   = flag.String("e", "all", "comma-separated experiment ids (e1..e9) or 'all'")
		scale   = flag.String("scale", "full", "'full' or 'quick'")
		workers = flag.Int("workers", 0, "when > 0, run the throughput-vs-goroutines scaling table up to this many workers instead of the experiments")
		backend = flag.String("backend", "memory", "vault backend for -workers: 'memory' or 'file' (file adds the WAL + fsync path, where group commit pays off)")
		jsonOut = flag.Bool("json", false, "also write machine-readable results to the first free BENCH_<n>.json")
		reads   = flag.Int("reads", 0, "when > 0, run the read-path benchmark: this many Gets over a small warmed record set instead of the experiments")
		noCache = flag.Bool("no-cache", false, "disable every read-cache layer (DEK, block, negative) — the before side of a cache before/after")
	)
	flag.Parse()
	if *reads > 0 {
		if err := runReads(*reads, *backend, *scale, *noCache, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "medbench:", err)
			os.Exit(1)
		}
		return
	}
	if *workers > 0 {
		if err := runScaling(*workers, *backend, *scale, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "medbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*which, *scale, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "medbench:", err)
		os.Exit(1)
	}
}

func run(which, scale string, jsonOut bool) error {
	if scale != "full" && scale != "quick" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	n2, n4, n5, n6, n7, n8, n9 := 500, []int{200, 1000, 5000}, 40, 50, []int{1000, 10000, 50000}, 300, 500
	if scale == "quick" {
		n2, n4, n5, n6, n7, n8, n9 = 100, []int{100, 400}, 10, 10, []int{500, 2000}, 60, 100
	}
	e2sizes := []int{200, 1000, 4000}
	if scale == "quick" {
		e2sizes = []int{100, 400}
	}
	all := map[string]func() (experiments.Table, error){
		"e1":  experiments.E1,
		"e2":  func() (experiments.Table, error) { return experiments.E2(n2) },
		"e2b": func() (experiments.Table, error) { return experiments.E2Series(e2sizes) },
		"e3":  experiments.E3,
		"e4":  func() (experiments.Table, error) { return experiments.E4(n4) },
		"e5":  func() (experiments.Table, error) { return experiments.E5(n5) },
		"e6":  func() (experiments.Table, error) { return experiments.E6(n6) },
		"e7":  func() (experiments.Table, error) { return experiments.E7(n7) },
		"e8":  func() (experiments.Table, error) { return experiments.E8(n8) },
		"e9":  func() (experiments.Table, error) { return experiments.E9(n9) },
	}
	order := []string{"e1", "e2", "e2b", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}

	var selected []string
	if which == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(which, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := all[id]; !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e9 or e2b)", id)
			}
			selected = append(selected, id)
		}
	}

	fmt.Printf("MedVault experiment harness — scale=%s, %s\n\n", scale, time.Now().Format(time.RFC3339))
	for _, id := range selected {
		start := time.Now()
		tbl, err := all[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %s)\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}
	printMetricsBreakdown(os.Stdout)
	if jsonOut {
		return writeBenchJSON(benchReport{Mode: "experiments", Scale: scale})
	}
	return nil
}

// runScaling measures Put throughput against one vault as the number of
// concurrent workers grows — the end-to-end check on the striped lock
// manager and WAL group commit. Every number in the table is read back from
// the process-wide metrics registry (counter deltas around each run), not
// from harness-side bookkeeping, so the table exercises the same
// observability surface medvaultd exposes on /metrics.
func runScaling(maxWorkers int, backend, scale string, jsonOut bool) error {
	if backend != "memory" && backend != "file" {
		return fmt.Errorf("unknown backend %q (want memory or file)", backend)
	}
	if scale != "full" && scale != "quick" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	total := 2000
	if backend == "file" {
		total = 600 // every batch fsyncs; keep wall time sane
	}
	if scale == "quick" {
		total /= 5
	}

	series := []int{1}
	for w := 2; w < maxWorkers; w *= 2 {
		series = append(series, w)
	}
	if maxWorkers > 1 {
		series = append(series, maxWorkers)
	}

	fmt.Printf("MedVault concurrency scaling — backend=%s, %d puts per run, GOMAXPROCS=%d\n",
		backend, total, runtime.GOMAXPROCS(0))
	fmt.Printf("(speedup is relative to the 1-worker run; on a single-CPU host the memory\n")
	fmt.Printf("backend cannot exceed 1× — the file backend still gains from shared fsyncs)\n\n")
	fmt.Printf("  %7s %8s %9s %10s %8s", "workers", "puts", "seconds", "puts/sec", "speedup")
	if backend == "file" {
		fmt.Printf(" %8s %9s", "fsyncs", "batching")
	}
	fmt.Println()

	var baseline float64
	var rows []scalingRow
	for _, w := range series {
		r, err := scalingRun(w, total, backend)
		if err != nil {
			return err
		}
		if baseline == 0 {
			baseline = r.rate
		}
		rows = append(rows, scalingRow{
			Workers: w, Puts: r.puts, Seconds: r.secs,
			PutsPerSec: r.rate, Speedup: r.rate / baseline,
			GroupCommits: r.groupCommits, WALAppends: r.walAppends,
		})
		fmt.Printf("  %7d %8d %9.3f %10.0f %7.2fx", w, r.puts, r.secs, r.rate, r.rate/baseline)
		if backend == "file" {
			batching := float64(r.walAppends)
			if r.groupCommits > 0 {
				batching /= float64(r.groupCommits)
			}
			fmt.Printf(" %8d %9.1f", r.groupCommits, batching)
		}
		fmt.Println()
	}
	if jsonOut {
		return writeBenchJSON(benchReport{
			Mode: "scaling", Scale: scale, Backend: backend, Scaling: rows,
		})
	}
	return nil
}

// runReads measures the hot read path: a small record set is written once,
// then hammered with Gets (plus a slice of unknown-ID probes for the
// negative-lookup layer). With the caches on, steady state is all hits —
// no AES-GCM DEK unwrap, no blockstore read; with -no-cache every Get pays
// the full pipeline. Running both and diffing the BENCH JSONs is the
// before/after the bench trajectory records.
func runReads(total int, backend, scale string, noCache, jsonOut bool) error {
	if backend != "memory" && backend != "file" {
		return fmt.Errorf("unknown backend %q (want memory or file)", backend)
	}
	if scale != "full" && scale != "quick" {
		return fmt.Errorf("unknown scale %q", scale)
	}
	records := 200
	if scale == "quick" {
		records = 50
	}
	if records > total {
		records = total
	}

	cfg := core.Config{Name: "medbench-reads", Master: mustNewKey()}
	if noCache {
		cfg.DEKCacheEntries = -1
		cfg.BlockCacheBytes = -1
		cfg.NegCacheEntries = -1
	}
	if backend == "file" {
		dir, err := os.MkdirTemp("", "medbench-reads-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	v, err := core.Open(cfg)
	if err != nil {
		return err
	}
	defer v.Close()
	a, err := core.NewAdapter(v)
	if err != nil {
		return err
	}
	for i := 0; i < records; i++ {
		rec := ehr.Record{
			ID:      fmt.Sprintf("read-%d", i),
			Patient: "Read Patient", MRN: fmt.Sprintf("mrn-read-%d", i),
			Category: ehr.CategoryClinical, Author: "bench-admin",
			CreatedAt: experiments.Epoch,
			Title:     "read-path probe", Body: "cache benchmark record body",
		}
		if err := a.Put(rec); err != nil {
			return err
		}
	}

	cacheState := "enabled"
	if noCache {
		cacheState = "disabled"
	}
	fmt.Printf("MedVault read-path benchmark — backend=%s, %d records, %d gets, caches %s\n\n",
		backend, records, total, cacheState)

	known, unknown := 0, 0
	start := time.Now()
	for i := 0; i < total; i++ {
		if i%10 == 9 {
			// Unknown-ID probe: must stay ErrNotFound and still be audited;
			// with caches on, repeats are negative-cache hits.
			if _, err := a.Get(fmt.Sprintf("missing-%d", i%records)); err == nil {
				return fmt.Errorf("probe of nonexistent record unexpectedly succeeded")
			}
			unknown++
			continue
		}
		if _, err := a.Get(fmt.Sprintf("read-%d", i%records)); err != nil {
			return err
		}
		known++
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("  %d gets (%d known, %d unknown-ID probes) in %.3fs — %.0f gets/sec\n\n",
		total, known, unknown, elapsed, float64(total)/elapsed)
	printMetricsBreakdown(os.Stdout)
	printCacheCounters(os.Stdout)
	if jsonOut {
		return writeBenchJSON(benchReport{
			Mode: "reads", Scale: scale, Backend: backend, CacheConfig: cacheState,
		})
	}
	return nil
}

// printCacheCounters renders the per-layer read-cache accounting.
func printCacheCounters(w *os.File) {
	fmt.Fprintln(w, "\nRead-cache counters (process-wide)")
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %9s\n", "cache", "hits", "misses", "evictions", "hit rate")
	for _, row := range cacheRows() {
		fmt.Fprintf(w, "  %-10s %10d %10d %10d %8.1f%%\n",
			row.Cache, row.Hits, row.Misses, row.Evictions, 100*row.HitRate)
	}
}

type scalingResult struct {
	puts         uint64
	secs         float64
	rate         float64
	groupCommits uint64
	walAppends   uint64
}

// scalingRun drives total puts through a fresh vault from w workers and
// reports registry counter deltas plus wall time.
func scalingRun(w, total int, backend string) (scalingResult, error) {
	cfg := core.Config{Name: "medbench-scaling", Master: mustNewKey(), Clock: nil}
	var dir string
	if backend == "file" {
		var err error
		if dir, err = os.MkdirTemp("", "medbench-scaling-*"); err != nil {
			return scalingResult{}, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}
	v, err := core.Open(cfg)
	if err != nil {
		return scalingResult{}, err
	}
	defer v.Close()
	a, err := core.NewAdapter(v)
	if err != nil {
		return scalingResult{}, err
	}

	putsBefore := counterValue("medvault_core_ops_total", obs.L("op", "put"), obs.L("outcome", "ok"))
	gcBefore := counterValue("medvault_wal_group_commits_total")
	walBefore := counterValue("medvault_wal_appends_total")

	perWorker := total / w
	var wg sync.WaitGroup
	errs := make(chan error, w)
	start := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := ehr.Record{
					ID:      fmt.Sprintf("scale-w%d-g%d-%d", w, g, i),
					Patient: "Scaling Patient", MRN: fmt.Sprintf("mrn-%d-%d-%d", w, g, i),
					Category: ehr.CategoryClinical, Author: "bench-admin",
					CreatedAt: experiments.Epoch,
					Title:     "scaling note", Body: "throughput probe",
				}
				if err := a.Put(rec); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(errs)
	for err := range errs {
		return scalingResult{}, err
	}

	puts := counterValue("medvault_core_ops_total", obs.L("op", "put"), obs.L("outcome", "ok")) - putsBefore
	return scalingResult{
		puts:         uint64(puts),
		secs:         elapsed,
		rate:         puts / elapsed,
		groupCommits: uint64(counterValue("medvault_wal_group_commits_total") - gcBefore),
		walAppends:   uint64(counterValue("medvault_wal_appends_total") - walBefore),
	}, nil
}

// counterValue reads one counter series from the process registry; series
// labels must match wanted exactly (order-insensitive). Missing series read
// as zero, which is what a delta wants before the first increment.
func counterValue(name string, wanted ...obs.Label) float64 {
	for _, f := range obs.Default.Snapshot() {
		if f.Name != name {
			continue
		}
		for _, s := range f.Series {
			if len(s.Labels) != len(wanted) {
				continue
			}
			match := true
			for _, want := range wanted {
				found := false
				for _, l := range s.Labels {
					if l == want {
						found = true
						break
					}
				}
				if !found {
					match = false
					break
				}
			}
			if match {
				return s.Value
			}
		}
	}
	return 0
}

func mustNewKey() vcrypto.Key {
	k, err := vcrypto.NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// printMetricsBreakdown renders the per-mechanism cost split accumulated in
// the process-wide metrics registry across every experiment that just ran.
// The experiments report end-to-end numbers; this table attributes them —
// how much of the run went to sealing vs indexing vs auditing vs fsync —
// from the very same instrumentation medvaultd exposes on /metrics.
func printMetricsBreakdown(w *os.File) {
	fams := map[string]obs.FamilySnapshot{}
	for _, f := range obs.Default.Snapshot() {
		fams[f.Name] = f
	}
	hist := func(name string) (obs.HistSnapshot, bool) {
		f, ok := fams[name]
		if !ok {
			return obs.HistSnapshot{}, false
		}
		h, ok := f.MergedHist()
		return h, ok && h.Count > 0
	}

	mechanisms := []struct{ label, metric string }{
		{"encrypt (seal)", "medvault_crypto_seal_seconds"},
		{"decrypt (open)", "medvault_crypto_open_seconds"},
		{"index add", "medvault_index_add_seconds"},
		{"index search", "medvault_index_search_seconds"},
		{"audit append", "medvault_audit_append_seconds"},
		{"WAL fsync", "medvault_wal_fsync_seconds"},
		{"blockstore append", "medvault_blockstore_append_seconds"},
		{"blockstore read", "medvault_blockstore_read_seconds"},
	}
	fmt.Fprintln(w, "Per-mechanism latency breakdown (process-wide metrics registry, all experiments)")
	fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
		"mechanism", "count", "total", "mean", "p50", "p95", "p99")
	for _, m := range mechanisms {
		h, ok := hist(m.metric)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
			m.label, h.Count, secs(h.Sum), secs(h.Mean()),
			secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
	}

	// Vault operations, merged across outcomes per op label.
	if f, ok := fams["medvault_core_op_seconds"]; ok {
		byOp := mergeByLabel(f, "op")
		fmt.Fprintln(w, "\nVault operations (all outcomes)")
		fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
			"op", "count", "total", "mean", "p50", "p95", "p99")
		for _, op := range sortedKeys(byOp) {
			h := byOp[op]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
				op, h.Count, secs(h.Sum), secs(h.Mean()),
				secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
		}
	}

	// Per-span breakdown from the tracer: the same numbers the mechanism
	// table shows, but carved along the trace's span taxonomy — so the
	// attribution matches what an operator sees on /debug/traces exactly.
	if f, ok := fams["medvault_span_seconds"]; ok {
		bySpan := mergeByLabel(f, "span")
		fmt.Fprintln(w, "\nPer-span latency breakdown (traced operations)")
		fmt.Fprintf(w, "  %-18s %9s %10s %9s %9s %9s %9s\n",
			"span", "count", "total", "mean", "p50", "p95", "p99")
		for _, name := range sortedKeys(bySpan) {
			h := bySpan[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-18s %9d %10s %9s %9s %9s %9s\n",
				name, h.Count, secs(h.Sum), secs(h.Mean()),
				secs(h.Quantile(0.50)), secs(h.Quantile(0.95)), secs(h.Quantile(0.99)))
		}
	}
}

// mergeByLabel folds a histogram family's series by one label's value,
// merging series that differ only in other labels (e.g. outcome).
func mergeByLabel(f obs.FamilySnapshot, key string) map[string]obs.HistSnapshot {
	out := map[string]obs.HistSnapshot{}
	for _, s := range f.Series {
		if s.Hist == nil {
			continue
		}
		val := "unknown"
		for _, l := range s.Labels {
			if l.Key == key {
				val = l.Value
			}
		}
		if prev, seen := out[val]; seen {
			out[val] = prev.Merge(*s.Hist)
		} else {
			out[val] = *s.Hist
		}
	}
	return out
}

func sortedKeys(m map[string]obs.HistSnapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// secs renders a duration measured in seconds at a bench-friendly precision.
func secs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
