// Command medsim runs the deterministic compliance simulator: a seeded
// op-sequence generator drives a real vault through every public operation —
// valid, invalid, and faulted — while a reference model predicts every
// observable (results, audit journal, provenance chains, disclosure
// accounting, search hits, retention sweeps). The first divergence fails the
// run; the trace is then minimized with delta debugging and written next to
// the full trace for replay.
//
//	medsim -quick                 # CI battery: fixed seeds, both backends, 1- and 4-shard
//	medsim -seed 42 -ops 2000     # one long seeded run
//	medsim -quick -shards 4       # the battery forced onto a 4-shard cluster
//	medsim -replay failure.trace  # re-execute a recorded (shrunk) trace
//
// Exit codes: 0 all runs clean, 1 divergence found, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"medvault/internal/sim"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "generator seed")
		ops     = flag.Int("ops", 500, "operations to generate")
		workers = flag.Int("workers", 2, "logical writers to interleave")
		shards  = flag.Int("shards", 0, "cluster shard count (0 = battery defaults / single vault)")
		durable  = flag.Bool("durable", true, "file-backed vault over the fault-injecting memory disk (false = memory backend)")
		failover = flag.Bool("failover", false, "durable mode: replicate to a warm follower and promote it at every crash step")
		quick   = flag.Bool("quick", false, "run the fixed CI battery instead of a single seed")
		replay  = flag.String("replay", "", "replay a recorded trace file instead of generating")
		outPath = flag.String("trace", "", "write the run's trace here (failures always write medsim-failure-<seed>.trace)")
		verbose = flag.Bool("v", false, "verbose progress")
	)
	flag.Parse()

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}

	if *replay != "" {
		t, err := sim.ReadTraceFile(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "medsim: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("replaying %s: %d steps, seed %d, trace %s\n", *replay, len(t.Steps), t.Plan.Seed, short(t.Hash()))
		if d := sim.Replay(t, logf); d != nil {
			fmt.Printf("DIVERGENCE: %v\n", d)
			os.Exit(1)
		}
		fmt.Println("replay clean: vault matches the reference model at every step")
		return
	}

	runs := []sim.RunOpts{{Seed: *seed, Ops: *ops, Workers: *workers, Shards: *shards, Durable: *durable, Failover: *failover, Logf: logf}}
	if *quick {
		runs = quickBattery(logf)
		if *shards > 1 {
			// An explicit -shards forces the whole battery onto that cluster
			// size, so CI can run the same seeds at 1 and 4 shards.
			for i := range runs {
				runs[i].Shards = *shards
			}
		}
	}
	for _, opts := range runs {
		backend := "memory"
		if opts.Durable {
			backend = "durable+faults"
			if opts.Failover {
				backend = "durable+failover"
			}
		}
		t, d := sim.Run(opts)
		if d == nil {
			shardNote := ""
			if opts.Shards > 1 {
				shardNote = fmt.Sprintf("  %d shards", opts.Shards)
			}
			fmt.Printf("seed %-4d %-15s %4d ops  %3d workers%s  clean  trace %s\n",
				opts.Seed, backend, opts.Ops, opts.Workers, shardNote, short(t.Hash()))
			if *outPath != "" && !*quick {
				if err := t.WriteFile(*outPath); err != nil {
					fmt.Fprintf(os.Stderr, "medsim: writing trace: %v\n", err)
					os.Exit(2)
				}
			}
			continue
		}
		fmt.Printf("seed %d %s: DIVERGENCE at step %d: %v\n", opts.Seed, backend, d.Index, d)
		fail(t, d, logf)
	}
}

// quickBattery is the CI configuration: a fixed spread of seeds over both
// backends, small enough to run in seconds, adversarial enough that
// reverting a durability fix or a compliance check fails it.
func quickBattery(logf func(string, ...any)) []sim.RunOpts {
	var runs []sim.RunOpts
	for seed := int64(1); seed <= 4; seed++ {
		runs = append(runs, sim.RunOpts{Seed: seed, Ops: 220, Workers: 2, Durable: true, Logf: logf})
	}
	for seed := int64(1); seed <= 2; seed++ {
		runs = append(runs, sim.RunOpts{Seed: seed, Ops: 260, Workers: 1, Logf: logf})
	}
	runs = append(runs, sim.RunOpts{Seed: 9, Ops: 300, Workers: 4, Durable: true, Logf: logf})
	// Sharded entries: the same generator driving a 4-shard cluster, so the
	// routing, per-shard audit chains, and merge ordering are in the default
	// battery, not just behind an explicit -shards.
	runs = append(runs,
		sim.RunOpts{Seed: 1, Ops: 220, Workers: 2, Shards: 4, Durable: true, Logf: logf},
		sim.RunOpts{Seed: 2, Ops: 260, Workers: 2, Shards: 4, Logf: logf},
	)
	// Failover entries: the same seeds with the warm-follower twin armed, so
	// every crash in the battery also exercises promotion — single vault and
	// sharded.
	runs = append(runs,
		sim.RunOpts{Seed: 3, Ops: 220, Workers: 2, Durable: true, Failover: true, Logf: logf},
		sim.RunOpts{Seed: 4, Ops: 220, Workers: 2, Shards: 4, Durable: true, Failover: true, Logf: logf},
	)
	return runs
}

// fail writes the full trace, shrinks it to a minimal repro, writes that
// too, and exits 1.
func fail(t sim.Trace, d *sim.Divergence, logf func(string, ...any)) {
	base := fmt.Sprintf("medsim-failure-%d", t.Plan.Seed)
	full := base + ".trace"
	if err := t.WriteFile(full); err != nil {
		fmt.Fprintf(os.Stderr, "medsim: writing %s: %v\n", full, err)
		os.Exit(1)
	}
	fmt.Printf("full trace (%d steps) written to %s; shrinking...\n", len(t.Steps), full)
	min := sim.Shrink(t, func(c sim.Trace) bool { return sim.Replay(c, nil) != nil }, 800, logf)
	minPath := base + ".min.trace"
	if err := min.WriteFile(minPath); err != nil {
		fmt.Fprintf(os.Stderr, "medsim: writing %s: %v\n", minPath, err)
		os.Exit(1)
	}
	if rd := sim.Replay(min, nil); rd != nil {
		fmt.Printf("minimal repro (%d steps) written to %s\n", len(min.Steps), minPath)
		fmt.Printf("minimal divergence: %v\n", rd)
		for i, s := range min.Steps {
			fmt.Printf("  %2d %s\n", i, s)
		}
	}
	fmt.Printf("reproduce with: go run ./cmd/medsim -replay %s\n", minPath)
	os.Exit(1)
}

// short abbreviates a trace hash for one-line reports.
func short(h string) string { return h[:12] }
